"""Neural-network modules built on :mod:`repro.tensor`.

Provides the layer zoo the paper's models need: linear, layer norm,
embeddings, dropout, multi-head attention, transformer blocks for the three
architecture families of Table 3 (BERT ``BertLayer``, T5 ``T5Block``,
OPT ``OPTDecoderLayer``), and the pretraining losses.
"""

from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.linear import Linear
from repro.nn.layernorm import LayerNorm
from repro.nn.embedding import Embedding
from repro.nn.dropout import Dropout
from repro.nn.activations import GELU, ReLU, Tanh
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.transformer import FeedForward, BertLayer, T5Block, OPTDecoderLayer
from repro.nn.losses import masked_lm_loss, next_sentence_loss

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Linear",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "GELU",
    "ReLU",
    "Tanh",
    "MultiHeadSelfAttention",
    "FeedForward",
    "BertLayer",
    "T5Block",
    "OPTDecoderLayer",
    "masked_lm_loss",
    "next_sentence_loss",
]
