"""Dropout module (inverted dropout, disabled in eval mode)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class Dropout(Module):
    """Randomly zero elements with probability ``p`` during training."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)
