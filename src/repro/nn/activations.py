"""Activation modules."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class GELU(Module):
    """Gaussian error linear unit (BERT's hidden activation)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class ReLU(Module):
    """Rectified linear unit (T5/OPT feed-forward activation)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    """Hyperbolic tangent (BERT pooler activation)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


ACTIVATIONS = {"gelu": GELU, "relu": ReLU, "tanh": Tanh}


def get_activation(name: str) -> Module:
    """Instantiate an activation module by name."""
    try:
        return ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(f"unknown activation {name!r}; choose from {sorted(ACTIVATIONS)}")
