"""Transformer blocks for the architecture families in the paper's Table 3.

* ``BertLayer`` — post-LN encoder block (``BertLayer`` in Hugging Face),
  GELU feed-forward.  Used by BERT-Base/Large.
* ``T5Block`` — pre-LN encoder block with ReLU feed-forward (T5-Base/Large).
* ``OPTDecoderLayer`` — pre-LN causal decoder block with ReLU feed-forward
  (OPT-125M/350M).

Each block is "a multi-head self-attention followed by a feed forward
layer" (Table 3 caption) and contains six Linear layers, which is what the
K-FAC work inventory per stage counts.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import get_activation
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.dropout import Dropout
from repro.nn.layernorm import LayerNorm
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import Tensor


class FeedForward(Module):
    """Position-wise feed-forward: Linear(d, d_ff) -> act -> Linear(d_ff, d)."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        activation: str = "gelu",
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.dense_in = Linear(d_model, d_ff, rng=rng)
        self.act = get_activation(activation)
        self.dense_out = Linear(d_ff, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.dense_out(self.act(self.dense_in(x))))


class BertLayer(Module):
    """Post-LN BERT encoder block (residual -> LayerNorm after each sublayer)."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.attention = MultiHeadSelfAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)
        self.attn_norm = LayerNorm(d_model)
        self.ffn = FeedForward(d_model, d_ff, activation="gelu", dropout=dropout, rng=rng)
        self.ffn_norm = LayerNorm(d_model)

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        attn = self.attn_dropout(self.attention(x, attention_mask))
        x = self.attn_norm(x + attn)
        x = self.ffn_norm(x + self.ffn(x))
        return x


class T5Block(Module):
    """Pre-LN encoder block with ReLU feed-forward (simplified T5 encoder)."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.attn_norm = LayerNorm(d_model, eps=1e-6)
        self.attention = MultiHeadSelfAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)
        self.ffn_norm = LayerNorm(d_model, eps=1e-6)
        self.ffn = FeedForward(d_model, d_ff, activation="relu", dropout=dropout, rng=rng)

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        x = x + self.attn_dropout(self.attention(self.attn_norm(x), attention_mask))
        x = x + self.ffn(self.ffn_norm(x))
        return x


class OPTDecoderLayer(Module):
    """Pre-LN causal decoder block with ReLU feed-forward (OPT family)."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.attn_norm = LayerNorm(d_model, eps=1e-5)
        self.attention = MultiHeadSelfAttention(
            d_model, num_heads, dropout=dropout, causal=True, rng=rng
        )
        self.attn_dropout = Dropout(dropout, rng=rng)
        self.ffn_norm = LayerNorm(d_model, eps=1e-5)
        self.ffn = FeedForward(d_model, d_ff, activation="relu", dropout=dropout, rng=rng)

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        x = x + self.attn_dropout(self.attention(self.attn_norm(x), attention_mask))
        x = x + self.ffn(self.ffn_norm(x))
        return x


BLOCK_CLASSES = {
    "BertLayer": BertLayer,
    "T5Block": T5Block,
    "OPTDecoderLayer": OPTDecoderLayer,
}
