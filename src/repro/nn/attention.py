"""Multi-head self-attention (Vaswani et al. 2017), BERT-style.

The four projections (query/key/value/output) are :class:`repro.nn.Linear`
layers, so K-FAC treats each as a Kronecker-factored block exactly as the
paper does for "all fully-connected layers" (§4).
"""

from __future__ import annotations

import numpy as np

from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import Tensor, functional as F

_NEG_INF = np.float32(-1e9)


class MultiHeadSelfAttention(Module):
    """Self-attention over sequences ``(batch, seq, d_model)``.

    Parameters
    ----------
    d_model:
        Model width (Table 3's ``d_model``).
    num_heads:
        Number of attention heads ``h``; must divide ``d_model``.
    dropout:
        Attention-probability dropout rate.
    causal:
        Apply a lower-triangular mask (used by :class:`OPTDecoderLayer`).
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.1,
        causal: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        rng = rng if rng is not None else np.random.default_rng()
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.causal = causal
        self.query = Linear(d_model, d_model, rng=rng)
        self.key = Linear(d_model, d_model, rng=rng)
        self.value = Linear(d_model, d_model, rng=rng)
        self.output = Linear(d_model, d_model, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, S, d) -> (B, h, S, d_h)
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        """Apply attention.

        Parameters
        ----------
        x:
            ``(batch, seq, d_model)`` input.
        attention_mask:
            Optional ``(batch, seq)`` array, 1 for real tokens and 0 for
            padding; padded keys receive -inf scores.
        """
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        # No mask and not causal: the bias would be all zeros — skip its
        # (batch, 1, 1, seq) allocation and the np.any scan entirely.
        bias = None
        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=bool).reshape(batch, 1, 1, seq)
            bias = np.where(mask, 0.0, _NEG_INF).astype(np.float32)
        if self.causal:
            causal_bias = np.triu(np.full((seq, seq), _NEG_INF, dtype=np.float32), k=1)
            causal_bias = causal_bias.reshape(1, 1, seq, seq)
            bias = causal_bias if bias is None else bias + causal_bias
        if bias is not None and np.any(bias):
            scores = scores + Tensor(bias)

        probs = F.softmax(scores, axis=-1)
        probs = self.attn_dropout(probs)
        context = probs @ v  # (B, h, S, d_h)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.output(merged)
