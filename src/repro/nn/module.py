"""``Module``/``Parameter`` infrastructure (the PyTorch ``nn.Module`` analogue).

Modules discover their parameters and submodules through attribute
assignment, support train/eval mode, state dicts, and recursive iteration —
everything the optimizers, K-FAC, and the pipeline stage partitioner need.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor: always requires grad."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all NN layers.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__`` and implement :meth:`forward`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    # -- forward ----------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- traversal ----------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- state -----------------------------------------------------------------

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if p.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.shape} vs {state[name].shape}"
                )
            p.data = state[name].astype(p.dtype).copy()


class ModuleList(Module):
    """A list of submodules registered under integer names."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: list[Module] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> None:
        self._modules[str(len(self._items))] = module
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return ModuleList(self._items[idx])
        return self._items[idx]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers don't forward
        raise RuntimeError("ModuleList is a container; call its items instead")
