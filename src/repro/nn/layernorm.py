"""Layer normalization module (BERT default eps = 1e-12)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F


class LayerNorm(Module):
    """Normalize over the last axis with learnable scale and shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-12) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape, dtype=np.float32))
        self.bias = Parameter(np.zeros(normalized_shape, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)
