"""Pretraining losses: masked language modeling and next-sentence prediction.

The paper's task (§4) is "the sum of the masked language modeling loss
(classification with vocabulary size 30,522) and next sentence prediction
loss (binary classification)".
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, functional as F

#: Label value marking positions excluded from the MLM loss.
IGNORE_INDEX = -100


def masked_lm_loss(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy over masked positions only.

    Parameters
    ----------
    logits:
        ``(batch, seq, vocab)`` prediction scores.
    labels:
        ``(batch, seq)`` integer labels, :data:`IGNORE_INDEX` where unmasked.
    """
    b, s, v = logits.shape
    return F.cross_entropy(
        logits.reshape(b * s, v), np.asarray(labels).reshape(-1), ignore_index=IGNORE_INDEX
    )


def next_sentence_loss(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Binary (2-class) cross-entropy for the NSP head.

    Parameters
    ----------
    logits:
        ``(batch, 2)`` scores.
    labels:
        ``(batch,)`` in {0 = is-next, 1 = not-next}.
    """
    return F.cross_entropy(logits, np.asarray(labels).reshape(-1))
