"""Fully-connected layer with K-FAC capture points.

K-FAC (paper §2.3) needs, for every linear layer l, the layer *inputs*
a_l (to build the Kronecker factor A_l) and the gradients w.r.t. the layer
*outputs* e_l (to build B_l).  ``Linear`` exposes both through an opt-in
capture mechanism so the optimizer never has to touch the forward code.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class Linear(Module):
    """``y = x @ W^T + b`` over the last axis.

    Parameters
    ----------
    in_features, out_features:
        d_in^l and d_out^l in the paper's notation.
    bias:
        Whether to include the additive bias (BERT uses biases everywhere).
    rng:
        Generator for weight init (scaled normal, std 0.02 as in BERT).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            (rng.standard_normal((out_features, in_features)) * init_std).astype(
                np.float32
            )
        )
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        # K-FAC capture state. When `kfac_capture` is True the layer stores
        # flattened (rows, features) copies of its inputs and output grads for
        # each forward/backward pass until `kfac_pop()` or `kfac_clear()` is
        # called.
        self.kfac_capture = False
        self.captured_inputs: list[np.ndarray] = []
        self.captured_output_grads: list[np.ndarray] = []

    def forward(self, x: Tensor) -> Tensor:
        if self.kfac_capture:
            self.captured_inputs.append(x.data.reshape(-1, self.in_features).copy())
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        if self.kfac_capture:
            dout = self.out_features

            def hook(g: np.ndarray) -> None:
                self.captured_output_grads.append(g.reshape(-1, dout).copy())

            out = out.with_grad_hook(hook)
        return out

    def kfac_pop(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Return and clear the captured (inputs, output-grads) lists."""
        inputs, grads = self.captured_inputs, self.captured_output_grads
        self.captured_inputs = []
        self.captured_output_grads = []
        return inputs, grads

    def kfac_clear(self) -> None:
        """Drop captured rows in place — no list allocations.

        Non-refresh steps discard captures every step; clearing the
        existing lists keeps the steady-state loop allocation-free.
        """
        self.captured_inputs.clear()
        self.captured_output_grads.clear()

    def extra_repr(self) -> str:  # pragma: no cover - debugging aid
        return f"in={self.in_features}, out={self.out_features}"
