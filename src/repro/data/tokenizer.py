"""Trainable WordPiece-style subword tokenizer.

BERT uses a 30,522-entry WordPiece vocabulary.  This implementation learns
a subword inventory by greedy pair merging (BPE) over a training corpus,
then tokenizes words by longest-match-first with ``##`` continuation
prefixes, exactly the WordPiece runtime algorithm.
"""

from __future__ import annotations

from collections import Counter

#: Special tokens and their fixed low ids (BERT convention).
SPECIAL_TOKENS = {
    "[PAD]": 0,
    "[UNK]": 1,
    "[CLS]": 2,
    "[SEP]": 3,
    "[MASK]": 4,
}


class WordPieceTokenizer:
    """Subword tokenizer with BPE training and WordPiece-style encoding."""

    def __init__(self) -> None:
        self.vocab: dict[str, int] = dict(SPECIAL_TOKENS)
        self.inv_vocab: dict[int, str] = {i: t for t, i in self.vocab.items()}
        self._max_piece_len = 1

    # -- training ---------------------------------------------------------------

    def train(self, text: str, vocab_size: int = 1000) -> None:
        """Learn a subword vocabulary of ``vocab_size`` entries from text."""
        if vocab_size <= len(SPECIAL_TOKENS) + 8:
            raise ValueError(f"vocab_size {vocab_size} too small")
        word_freq = Counter(text.split())
        # Start from characters; merge the most frequent adjacent pair.
        symbol_seqs: dict[tuple[str, ...], int] = {
            tuple(w): f for w, f in word_freq.items()
        }
        pieces: set[str] = set()
        for seq in symbol_seqs:
            pieces.update(seq)

        while len(pieces) + len(SPECIAL_TOKENS) < vocab_size:
            pair_freq: Counter = Counter()
            for seq, f in symbol_seqs.items():
                for a, b in zip(seq, seq[1:]):
                    pair_freq[(a, b)] += f
            if not pair_freq:
                break
            (a, b), freq = pair_freq.most_common(1)[0]
            if freq < 2:
                break
            merged = a + b
            pieces.add(merged)
            new_seqs: dict[tuple[str, ...], int] = {}
            for seq, f in symbol_seqs.items():
                out: list[str] = []
                i = 0
                while i < len(seq):
                    if i + 1 < len(seq) and seq[i] == a and seq[i + 1] == b:
                        out.append(merged)
                        i += 2
                    else:
                        out.append(seq[i])
                        i += 1
                new_seqs[tuple(out)] = new_seqs.get(tuple(out), 0) + f
            symbol_seqs = new_seqs

        self.vocab = dict(SPECIAL_TOKENS)
        for piece in sorted(pieces, key=lambda p: (len(p), p)):
            if len(self.vocab) >= vocab_size:
                break
            self.vocab[piece] = len(self.vocab)
            if len(self.vocab) < vocab_size:
                self.vocab["##" + piece] = len(self.vocab)
        self.inv_vocab = {i: t for t, i in self.vocab.items()}
        self._max_piece_len = max(
            (len(p) for p in pieces), default=1
        )

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    # -- runtime ------------------------------------------------------------------

    def tokenize_word(self, word: str) -> list[str]:
        """Longest-match-first WordPiece split of one word."""
        out: list[str] = []
        i = 0
        n = len(word)
        while i < n:
            end = min(n, i + self._max_piece_len)
            piece = None
            for j in range(end, i, -1):
                cand = word[i:j] if i == 0 else "##" + word[i:j]
                if cand in self.vocab:
                    piece = cand
                    i = j
                    break
            if piece is None:
                return ["[UNK]"]
            out.append(piece)
        return out

    def encode(self, text: str) -> list[int]:
        """Token ids of whitespace-split text (no special tokens added)."""
        ids: list[int] = []
        for word in text.split():
            for piece in self.tokenize_word(word):
                ids.append(self.vocab[piece])
        return ids

    def decode(self, ids: list[int]) -> str:
        """Inverse of encode (best effort; joins continuations)."""
        words: list[str] = []
        for i in ids:
            tok = self.inv_vocab.get(int(i), "[UNK]")
            if tok.startswith("##") and words:
                words[-1] += tok[2:]
            else:
                words.append(tok)
        return " ".join(words)
