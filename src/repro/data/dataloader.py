"""End-to-end pretraining data pipeline: corpus -> tokenizer -> batches."""

from __future__ import annotations

from repro.data.corpus import CorpusConfig, SyntheticCorpus
from repro.data.mlm import MLMExampleBuilder, PretrainBatch
from repro.data.tokenizer import WordPieceTokenizer


class PretrainDataLoader:
    """Deterministic stream of :class:`PretrainBatch` for BERT pretraining.

    Builds the synthetic corpus, trains the subword tokenizer on it,
    pre-tokenizes a pool of documents, and then samples batches.

    Parameters
    ----------
    vocab_size:
        Subword vocabulary size (BERT uses 30,522; scaled-down models use
        proportionally smaller values).
    seq_len:
        Maximum sequence length (Phase 1 uses 128).
    num_documents:
        Size of the pre-tokenized document pool.
    corpus_config:
        Underlying language parameters.
    seed:
        Controls masking and batch sampling.
    """

    def __init__(
        self,
        vocab_size: int = 1000,
        seq_len: int = 128,
        num_documents: int = 500,
        corpus_config: CorpusConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.corpus = SyntheticCorpus(corpus_config or CorpusConfig(seed=seed))
        self.tokenizer = WordPieceTokenizer()
        train_text = self.corpus.text(min(num_documents, 300), seed=seed + 1)
        self.tokenizer.train(train_text, vocab_size=vocab_size)
        self.documents: list[list[list[int]]] = [
            [self.tokenizer.encode(" ".join(sent)) for sent in doc]
            for doc in self.corpus.documents(num_documents, seed=seed + 2)
        ]
        # Drop empty sentences (possible after UNK collapse).
        self.documents = [
            [s for s in doc if s] for doc in self.documents
        ]
        self.documents = [d for d in self.documents if len(d) >= 2]
        self.builder = MLMExampleBuilder(self.tokenizer, seq_len=seq_len, seed=seed + 3)

    @property
    def vocab_size(self) -> int:
        return self.tokenizer.vocab_size

    def next_batch(self, batch_size: int) -> PretrainBatch:
        """Sample the next training batch."""
        return self.builder.build_batch(self.documents, batch_size)
