"""MLM masking and next-sentence pairing (Devlin et al. 2019, §3.1).

Examples are ``[CLS] A [SEP] B [SEP]`` with B the true next sentence
(label 0) or a random sentence (label 1), 50/50.  15% of tokens are
selected for prediction; of those 80% become ``[MASK]``, 10% a random
token, 10% unchanged.  Unselected positions carry label -100 (ignored).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.tokenizer import WordPieceTokenizer
from repro.nn.losses import IGNORE_INDEX


@dataclass
class PretrainBatch:
    """One training batch for BERT pretraining."""

    input_ids: np.ndarray       # (B, S) int64
    token_type_ids: np.ndarray  # (B, S) 0 for A segment, 1 for B
    attention_mask: np.ndarray  # (B, S) 1 = real token
    mlm_labels: np.ndarray      # (B, S) original id or IGNORE_INDEX
    nsp_labels: np.ndarray      # (B,)   0 = is-next, 1 = random

    def __len__(self) -> int:
        return self.input_ids.shape[0]


class MLMExampleBuilder:
    """Builds masked sentence-pair examples from tokenized sentences."""

    def __init__(
        self,
        tokenizer: WordPieceTokenizer,
        seq_len: int = 128,
        mask_prob: float = 0.15,
        seed: int = 0,
    ) -> None:
        if not 0.0 < mask_prob < 1.0:
            raise ValueError(f"mask_prob must be in (0, 1), got {mask_prob}")
        self.tokenizer = tokenizer
        self.seq_len = seq_len
        self.mask_prob = mask_prob
        self.rng = np.random.default_rng(seed)
        v = tokenizer.vocab
        self.cls_id = v["[CLS]"]
        self.sep_id = v["[SEP]"]
        self.mask_id = v["[MASK]"]
        self.pad_id = v["[PAD]"]
        self.vocab_size = tokenizer.vocab_size

    def build_example(
        self, sent_a: list[int], sent_b: list[int], is_random_next: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Assemble and mask one example; returns (ids, types, mask, labels)."""
        S = self.seq_len
        budget = S - 3  # [CLS], 2x [SEP]
        # Truncate the pair proportionally (longest-first, as in BERT).
        a, b = list(sent_a), list(sent_b)
        while len(a) + len(b) > budget:
            (a if len(a) >= len(b) else b).pop()

        ids = np.full(S, self.pad_id, dtype=np.int64)
        types = np.zeros(S, dtype=np.int64)
        attn = np.zeros(S, dtype=np.int64)
        seq = [self.cls_id, *a, self.sep_id, *b, self.sep_id]
        n = len(seq)
        ids[:n] = seq
        attn[:n] = 1
        types[len(a) + 2 : n] = 1

        labels = np.full(S, IGNORE_INDEX, dtype=np.int64)
        # Candidate positions: real tokens that are not [CLS]/[SEP].
        special = {0, len(a) + 1, n - 1}
        candidates = [i for i in range(n) if i not in special]
        k = max(1, int(round(len(candidates) * self.mask_prob)))
        picked = self.rng.choice(len(candidates), size=k, replace=False)
        for pi in picked:
            pos = candidates[int(pi)]
            labels[pos] = ids[pos]
            r = self.rng.random()
            if r < 0.8:
                ids[pos] = self.mask_id
            elif r < 0.9:
                # Random non-special replacement token.
                ids[pos] = int(self.rng.integers(5, self.vocab_size))
            # else: keep the original token (10%).
        return ids, types, attn, labels

    def build_batch(
        self, documents: list[list[list[int]]], batch_size: int
    ) -> PretrainBatch:
        """Sample ``batch_size`` sentence-pair examples from documents."""
        if not documents:
            raise ValueError("no documents provided")
        B = batch_size
        ids = np.zeros((B, self.seq_len), dtype=np.int64)
        types = np.zeros_like(ids)
        attn = np.zeros_like(ids)
        labels = np.zeros_like(ids)
        nsp = np.zeros(B, dtype=np.int64)
        for i in range(B):
            d = int(self.rng.integers(len(documents)))
            doc = documents[d]
            if len(doc) < 2:
                doc = doc + doc  # degenerate single-sentence document
            si = int(self.rng.integers(len(doc) - 1))
            sent_a = doc[si]
            if self.rng.random() < 0.5:
                sent_b = doc[si + 1]
                nsp[i] = 0
            else:
                dj = int(self.rng.integers(len(documents)))
                other = documents[dj]
                sent_b = other[int(self.rng.integers(len(other)))]
                nsp[i] = 1
            ids[i], types[i], attn[i], labels[i] = self.build_example(
                sent_a, sent_b, bool(nsp[i])
            )
        return PretrainBatch(ids, types, attn, labels, nsp)
