"""Data substrate: synthetic Wikipedia-equivalent pretraining corpus.

The paper pretrains on 14 GB of English Wikipedia (Appendix B.1), which is
unavailable offline.  We substitute a synthetic corpus with the properties
the MLM+NSP objectives actually exercise (see DESIGN.md §2):

* Zipfian unigram distribution (natural-language-like token frequencies);
* Markov bigram structure, so masked tokens are predictable from context
  (the loss is learnable, giving Fig. 7 its shape);
* documents of sentences, so next-sentence pairs are meaningful;
* a trainable subword (BPE/WordPiece-style) tokenizer over the raw text.
"""

from repro.data.corpus import SyntheticCorpus, CorpusConfig
from repro.data.tokenizer import WordPieceTokenizer, SPECIAL_TOKENS
from repro.data.mlm import MLMExampleBuilder, PretrainBatch
from repro.data.dataloader import PretrainDataLoader

__all__ = [
    "SyntheticCorpus",
    "CorpusConfig",
    "WordPieceTokenizer",
    "SPECIAL_TOKENS",
    "MLMExampleBuilder",
    "PretrainBatch",
    "PretrainDataLoader",
]
