"""Synthetic corpus generator with natural-language-like statistics.

Words are built from a syllable inventory (so subword tokenization is
meaningful), drawn from a Zipfian unigram prior, and chained through a
sparse Markov bigram model (so context predicts masked words — the
property MLM training needs to show convergence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_ONSETS = ["b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z",
           "st", "tr", "pl", "kr"]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "ou"]
_CODAS = ["", "n", "r", "s", "t", "l", "nd", "rk"]


@dataclass
class CorpusConfig:
    """Parameters of the synthetic language.

    Attributes
    ----------
    num_word_types:
        Vocabulary size of the underlying language.
    zipf_exponent:
        Unigram frequency follows rank^-s.
    branching:
        Successors per word in the Markov bigram model; smaller values mean
        more predictable text (lower achievable MLM loss).
    mean_sentence_len, mean_doc_sentences:
        Geometric means of sentence length (words) and document length
        (sentences).
    seed:
        Generator seed (language identity and text are reproducible).
    """

    num_word_types: int = 2000
    zipf_exponent: float = 1.1
    branching: int = 12
    mean_sentence_len: int = 12
    mean_doc_sentences: int = 8
    seed: int = 0


class SyntheticCorpus:
    """Generates documents of sentences over a fixed synthetic language."""

    def __init__(self, config: CorpusConfig | None = None) -> None:
        self.config = config or CorpusConfig()
        cfg = self.config
        if cfg.num_word_types < 10:
            raise ValueError("need at least 10 word types")
        rng = np.random.default_rng(cfg.seed)

        # Word surface forms: 1-3 syllables, lower ranks get shorter words
        # (Zipf's law of abbreviation).
        self.words: list[str] = []
        seen: set[str] = set()
        while len(self.words) < cfg.num_word_types:
            n_syll = 1 + (len(self.words) > 50) + (len(self.words) > 800)
            w = "".join(
                _ONSETS[rng.integers(len(_ONSETS))]
                + _NUCLEI[rng.integers(len(_NUCLEI))]
                + _CODAS[rng.integers(len(_CODAS))]
                for _ in range(n_syll)
            )
            if w not in seen:
                seen.add(w)
                self.words.append(w)

        # Zipfian unigram prior.
        ranks = np.arange(1, cfg.num_word_types + 1, dtype=np.float64)
        self.unigram = ranks**-cfg.zipf_exponent
        self.unigram /= self.unigram.sum()

        # Sparse Markov bigram model: each word type transitions to
        # `branching` successors sampled from the unigram prior, with
        # Zipfian weights among them.
        self.successors = rng.choice(
            cfg.num_word_types,
            size=(cfg.num_word_types, cfg.branching),
            p=self.unigram,
        )
        w = np.arange(1, cfg.branching + 1, dtype=np.float64) ** -1.0
        self.successor_probs = w / w.sum()

    # -- sampling ----------------------------------------------------------------

    def sample_sentence(self, rng: np.random.Generator) -> list[str]:
        """One sentence as a list of word strings."""
        n = max(2, rng.geometric(1.0 / self.config.mean_sentence_len))
        idx = int(rng.choice(self.config.num_word_types, p=self.unigram))
        out = [idx]
        for _ in range(n - 1):
            idx = int(self.successors[idx][rng.choice(
                self.config.branching, p=self.successor_probs)])
            out.append(idx)
        return [self.words[i] for i in out]

    def sample_document(self, rng: np.random.Generator) -> list[list[str]]:
        """One document: a list of sentences."""
        n = max(2, rng.geometric(1.0 / self.config.mean_doc_sentences))
        return [self.sample_sentence(rng) for _ in range(n)]

    def documents(self, count: int, seed: int = 1) -> list[list[list[str]]]:
        """Generate ``count`` documents deterministically."""
        rng = np.random.default_rng(seed)
        return [self.sample_document(rng) for _ in range(count)]

    def text(self, num_documents: int, seed: int = 1) -> str:
        """Raw text (one sentence per line, blank line between documents)."""
        parts = []
        for doc in self.documents(num_documents, seed):
            parts.append("\n".join(" ".join(s) for s in doc))
        return "\n\n".join(parts)
