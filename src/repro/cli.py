"""Command-line reproduction runner: ``python -m repro.cli [experiment]``.

Runs one (or all) of the paper's experiments and prints the same rows and
series the paper reports — the no-pytest path to the results.

Examples::

    python -m repro.cli fig3
    python -m repro.cli table2
    python -m repro.cli all          # everything except the slow fig7
    python -m repro.cli fig7         # the convergence run (~40 s)

The declarative campaign layer has its own subcommand family::

    python -m repro.cli campaign list
    python -m repro.cli campaign run zb --run-dir runs/zb --shard 1/3
    python -m repro.cli campaign diff zb
    python -m repro.cli campaign regen-goldens

(see :mod:`repro.campaign.cli`).

The capacity-planning service runs as its own subcommand::

    python -m repro.cli serve --port 8080 --state-dir runs/service

(see :mod:`repro.service`).
"""

from __future__ import annotations

import argparse
import sys
from functools import partial


def _fig1() -> None:
    from repro.experiments.fig1 import format_fig1, run_fig1

    print(format_fig1(run_fig1()))


def _fig3() -> None:
    from repro.experiments.fig3 import format_fig3, run_fig3

    print(format_fig3(run_fig3()))


def _fig4() -> None:
    from repro.experiments.fig4 import format_fig4, run_fig4

    print(format_fig4(run_fig4()))


def _fig5() -> None:
    from repro.experiments.perfmodel_figs import format_perf_figure, run_fig5

    print(format_perf_figure(run_fig5()))


def _fig6() -> None:
    from repro.experiments.perfmodel_figs import format_perf_figure, run_fig6_sweep

    out = run_fig6_sweep(b_micro_values=(1, 4, 16, 64), depth_values=(4, 8, 16))
    for key in (("P100", 1), ("V100", 1), ("RTX3090", 1)):
        print(format_perf_figure(out[key]))
        print()


def _fig7() -> None:
    from repro.experiments.fig7 import format_fig7, run_fig7

    print("training NVLAMB and K-FAC (this takes ~40 s) ...")
    print(format_fig7(run_fig7()))


def _fig8() -> None:
    from repro.experiments.fig8 import run_fig8

    r = run_fig8()
    print(f"{'step':>6s} {'NVLAMB':>10s} {'K-FAC':>10s}")
    for step in (1, 300, 600, 1000, 2000, 4000, 7038):
        print(f"{step:6d} {r.nvlamb_lr[step - 1]:10.6f} {r.kfac_lr[step - 1]:10.6f}")
    print(f"crossover at step {r.crossover_step} (paper: ~2,000)")


def _interleaved() -> None:
    from repro.experiments.interleaved import (
        format_interleaved_sweep,
        run_interleaved_sweep,
    )

    print(format_interleaved_sweep(run_interleaved_sweep()))


def _zb() -> None:
    from repro.experiments.zb import format_zb_sweep, run_zb_sweep

    print(format_zb_sweep(run_zb_sweep()))


def _schedule(schedule: str = "zb1f1b") -> None:
    from repro.experiments.zb import format_schedule_panel, run_schedule_panel

    print(format_schedule_panel(run_schedule_panel(schedule)))


def _robustness() -> None:
    from repro.experiments.robustness import format_robustness, run_robustness

    print(format_robustness(run_robustness()))


def _fig9_10() -> None:
    from repro.experiments.perfmodel_figs import format_perf_figure, run_fig9_10

    for arch in ("BERT-Base", "BERT-Large"):
        for sched in ("gpipe", "chimera"):
            print(format_perf_figure(run_fig9_10(arch, sched)))
            print()


def _table2() -> None:
    from repro.experiments.table2 import format_table2, run_table2

    print(format_table2(run_table2()))


def _table3() -> None:
    from repro.experiments.table3 import format_table3, run_table3

    print(format_table3(run_table3()))


EXPERIMENTS = {
    "fig1": _fig1,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9-10": _fig9_10,
    "table2": _table2,
    "table3": _table3,
    "interleaved": _interleaved,
    "zb": _zb,
    "schedule": _schedule,
    "robustness": _robustness,
}

#: "all" excludes the training run, which dominates wall-clock time.
FAST = [k for k in EXPERIMENTS if k != "fig7"]


def _serve(argv: list[str]) -> int:
    """``python -m repro.cli serve``: run the capacity-planning service."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli serve",
        description="Serve the capacity-planner HTTP API "
                    "(POST /plan, POST /sweep, GET /jobs/<id>, "
                    "GET /results/<hash>, GET /metrics).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8351)
    parser.add_argument("--state-dir", default=None,
                        help="directory for the durable result store and job "
                             "queue (omit for a purely in-memory server)")
    parser.add_argument("--inline-limit", type=int, default=None,
                        help="grids up to this many units answer inline; "
                             "bigger grids become jobs")
    parser.add_argument("--worker-jobs", type=int, default=1,
                        help="process shards per queued job (needs "
                             "--state-dir; 1 = in-process)")
    parser.add_argument("--budget", type=int, default=None,
                        help="total unit budget; requests that would exceed "
                             "it get HTTP 429 (cache hits are free)")
    parser.add_argument("--engine-pool", type=int, default=None,
                        help="engine slots for concurrent cold-miss "
                             "evaluation (default 4; 1 = the old "
                             "single-lock behavior)")
    parser.add_argument("--token", default=None,
                        help="require 'Authorization: Bearer <token>' on "
                             "every request (default: no auth)")
    args = parser.parse_args(argv)

    from repro.service import PlanningService, ServiceServer
    from repro.service.app import DEFAULT_INLINE_LIMIT

    service = PlanningService(
        state_dir=args.state_dir,
        inline_limit=(args.inline_limit if args.inline_limit is not None
                      else DEFAULT_INLINE_LIMIT),
        worker_jobs=args.worker_jobs,
        budget_units=args.budget,
        engine_pool=args.engine_pool,
        token=args.token,
    )
    server = ServiceServer(service, host=args.host, port=args.port)
    state = args.state_dir if args.state_dir else "in-memory"
    auth = "bearer token" if args.token else "none"
    print(f"capacity planner serving on {server.url} (state: {state}, "
          f"engines: {len(service.pool)}, auth: {auth})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        server.httpd.server_close()
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] == ["campaign"]:
        # The campaign family has its own parser (run/list/status/diff/...);
        # dispatch before the experiment parser sees the arguments.
        from repro.campaign.cli import main as campaign_main
        from repro.campaign.registry import load_builtin_campaigns

        load_builtin_campaigns()
        return campaign_main(argv[1:])
    if argv[:1] == ["serve"]:
        return _serve(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Reproduce PipeFisher (MLSys 2023) tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which paper artifact to regenerate ('all' = everything but fig7)",
    )
    from repro.pipeline.spec import schedule_names

    parser.add_argument(
        "--schedule",
        choices=schedule_names(),  # derived from the schedule registry
        default="zb1f1b",
        help="pipeline schedule for the 'schedule' experiment "
        "(any registered ScheduleSpec)",
    )
    args = parser.parse_args(argv)

    # Bind CLI options once, keeping the dispatch table zero-argument.
    runners = dict(EXPERIMENTS)
    runners["schedule"] = partial(_schedule, args.schedule)

    targets = FAST if args.experiment == "all" else [args.experiment]
    for name in targets:
        print(f"\n{'=' * 70}\n{name.upper()}\n{'=' * 70}")
        runners[name]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
