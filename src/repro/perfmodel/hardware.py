"""Hardware models for the accelerators the paper benchmarks on.

The paper measures microbenchmarks on NVIDIA P100, V100, and RTX3090 GPUs
(Appendix A.1).  We replace physical measurement with a roofline-style
model: each work type runs at the device's fp32 peak scaled by a per-kind
efficiency factor.  Efficiencies are calibrated once against the paper's
published BERT-Base P100 profile (see ``repro.perfmodel.calibration``) and
then reused for every architecture/hardware combination.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Hardware:
    """An accelerator's roofline parameters.

    Attributes
    ----------
    name:
        Display name.
    fp32_tflops:
        Peak fp32 throughput in TFLOP/s.
    memory_gb:
        Device memory capacity (limits model/micro-batch size).
    mem_bw_gbs:
        Memory bandwidth in GB/s (drives elementwise/optimizer work).
    interconnect_gbs:
        Point-to-point/collective bandwidth per device in GB/s.
    eff_gemm:
        Fraction of peak achieved by large dense matmuls (curvature,
        preconditioning, the GEMM-dominated parts of fwd/bwd).
    eff_fwd:
        Fraction of peak achieved by a full transformer-layer forward pass
        (mixed GEMM + attention + elementwise kernels).
    eff_inv:
        Fraction of peak achieved by Cholesky factorize+inverse on factor
        matrices (low parallelism, small matrices).
    kernel_density:
        Fraction of a fwd/bwd work interval during which a CUDA kernel is
        actually executing — the paper's "GPU utilization" counts only
        kernel-active time (Appendix B.4), and profiles of mixed workloads
        show inter-kernel gaps.  Dense K-FAC matmul work has density ~1.
    """

    name: str
    fp32_tflops: float
    memory_gb: float
    mem_bw_gbs: float
    interconnect_gbs: float = 1.1
    eff_gemm: float = 0.45
    eff_fwd: float = 0.62
    eff_inv: float = 0.15
    kernel_density: float = 0.88

    @property
    def flops_gemm(self) -> float:
        """Effective FLOP/s for dense matmul work."""
        return self.fp32_tflops * 1e12 * self.eff_gemm

    @property
    def flops_fwd(self) -> float:
        """Effective FLOP/s for transformer forward/backward work."""
        return self.fp32_tflops * 1e12 * self.eff_fwd

    @property
    def flops_inv(self) -> float:
        """Effective FLOP/s for Cholesky inversion work."""
        return self.fp32_tflops * 1e12 * self.eff_inv


#: Pascal P100 (the paper's main platform; 16 GB, ~9.3 TFLOP/s fp32).
#: ``interconnect_gbs`` is the *effective allreduce bus bandwidth* fitted to
#: the paper's measured Chimera step times (Table 2, Fig. 7) — a 2018-era
#: P100 cluster over InfiniBand, not per-link peak.
P100 = Hardware("P100", fp32_tflops=9.3, memory_gb=16.0, mem_bw_gbs=732.0)

#: Volta V100 (Appendix A.1 microbenchmarks; 14 TFLOP/s fp32, no tensor cores).
V100 = Hardware("V100", fp32_tflops=14.0, memory_gb=32.0, mem_bw_gbs=900.0,
                interconnect_gbs=1.5)

#: Ampere RTX3090 (35.6 TFLOP/s fp32, 24 GB).
RTX3090 = Hardware("RTX3090", fp32_tflops=35.6, memory_gb=24.0, mem_bw_gbs=936.0,
                   interconnect_gbs=1.0)

HARDWARE: dict[str, Hardware] = {h.name: h for h in (P100, V100, RTX3090)}
