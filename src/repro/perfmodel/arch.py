"""Transformer architecture configurations (paper Table 3) and FLOP counts.

Table 3 lists the six architectures whose performance models appear in
Figs. 9-16: BERT-Base/Large (S=128), T5-Base/Large (S=512), and
OPT-125M/350M (S=2048).  A pipeline stage is one (or more) transformer
*block* — "a multi-head self-attention followed by a feed forward layer".

FLOP counts below count one multiply-add as 2 FLOPs and cover the six
linear layers per block (query/key/value/output, FF-in, FF-out) plus the
attention score/context batched matmuls.  K-FAC work counts follow §2.3.1:

* curvature: ``A_l = U_A U_A^T`` costs ``2 * tokens * d_in^2`` and
  ``B_l`` costs ``2 * tokens * d_out^2`` per linear layer;
* inversion: Cholesky factorization + inverse ~ ``(4/3) d^3`` FLOPs per
  factor;
* precondition: ``B^{-1} G A^{-1}`` costs ``2 d_out^2 d_in + 2 d_out d_in^2``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransformerArch:
    """One row of the paper's Table 3."""

    name: str
    block_class: str  # the HF class name the paper cites
    d_model: int
    d_ff: int
    num_heads: int
    seq_len: int
    vocab_size: int = 30522

    # -- structural inventories --------------------------------------------------

    @property
    def linear_dims(self) -> list[tuple[int, int]]:
        """(d_in, d_out) of the six Linear layers in one block."""
        d, f = self.d_model, self.d_ff
        return [(d, d), (d, d), (d, d), (d, d), (d, f), (f, d)]

    @property
    def params_per_block(self) -> int:
        """Parameter count of one block (weights + biases + 2 LayerNorms)."""
        lin = sum(di * do + do for di, do in self.linear_dims)
        return lin + 2 * (2 * self.d_model)

    # -- per-(micro-batch, block) FLOP counts -------------------------------------

    def tokens(self, batch: int) -> int:
        return batch * self.seq_len

    def forward_flops(self, batch: int) -> float:
        """Forward FLOPs for one block and one micro-batch of ``batch`` seqs."""
        t = self.tokens(batch)
        linear = sum(2.0 * t * di * do for di, do in self.linear_dims)
        # Attention scores QK^T and context AV: 2 * 2 * t * S * d_model.
        attn = 4.0 * t * self.seq_len * self.d_model
        return linear + attn

    def backward_flops(self, batch: int) -> float:
        """Backward is ~2x forward (grad w.r.t. inputs + weights)."""
        return 2.0 * self.forward_flops(batch)

    def curvature_flops_a(self, batch: int) -> float:
        """Curvature work for all A factors of one block, one micro-batch."""
        t = self.tokens(batch)
        return sum(2.0 * t * di * di for di, _ in self.linear_dims)

    def curvature_flops_b(self, batch: int) -> float:
        """Curvature work for all B factors of one block, one micro-batch."""
        t = self.tokens(batch)
        return sum(2.0 * t * do * do for _, do in self.linear_dims)

    def curvature_flops(self, batch: int) -> float:
        return self.curvature_flops_a(batch) + self.curvature_flops_b(batch)

    def inversion_flops(self, factor_blocks: int = 1) -> float:
        """Cholesky factorize + explicit inverse of every factor of a block.

        Independent of batch size and sequence length (paper §3.3: "T_inv
        is constant regardless of B_micro or D").

        ``factor_blocks > 1`` applies Appendix A.2's K-block-diagonal
        approximation: a d-dim factor splits into K blocks of d/K, cutting
        inversion FLOPs by ~K^2.
        """
        if factor_blocks < 1:
            raise ValueError(f"factor_blocks must be >= 1, got {factor_blocks}")
        if factor_blocks == 1:
            return sum(
                (4.0 / 3.0) * di**3 + (4.0 / 3.0) * do**3
                for di, do in self.linear_dims
            )
        from repro.kfac.block_diagonal import block_diag_inversion_flops

        dims = [d for pair in self.linear_dims for d in pair]
        return block_diag_inversion_flops(dims, factor_blocks)

    def scaled(self, k: int) -> "TransformerArch":
        """Widen d_model and d_ff by ``k`` (Appendix A.2's scaling thought
        experiment; heads scale too so head_dim stays constant)."""
        if k < 1:
            raise ValueError(f"scale factor must be >= 1, got {k}")
        return TransformerArch(
            name=f"{self.name}-x{k}",
            block_class=self.block_class,
            d_model=self.d_model * k,
            d_ff=self.d_ff * k,
            num_heads=self.num_heads * k,
            seq_len=self.seq_len,
            vocab_size=self.vocab_size,
        )

    def precondition_flops(self) -> float:
        """Two-sided preconditioning of every weight gradient of a block."""
        return sum(2.0 * do * do * di + 2.0 * do * di * di
                   for di, do in self.linear_dims)

    # -- per-(micro-batch, block) memory (bytes, fp32) ------------------------------

    def activation_bytes(self, batch: int) -> float:
        """Activations a backward pass must retain for one block.

        Rough inventory per token: block input, QKV projections, attention
        probabilities (h*S per token), context, FF intermediate, FF output.
        """
        t = self.tokens(batch)
        per_token = 6 * self.d_model + self.d_ff
        attn_probs = self.num_heads * self.seq_len  # per token
        return 4.0 * t * (per_token + attn_probs)

    def boundary_activation_bytes(self, batch: int) -> float:
        """Stage-boundary activation (what recomputation keeps): one tensor."""
        return 4.0 * self.tokens(batch) * self.d_model

    def peak_error_bytes(self, batch: int) -> float:
        """Peak transient error-signal memory during one block's backward."""
        t = self.tokens(batch)
        return 4.0 * t * (2 * self.d_model + self.d_ff)

    def saved_error_bytes(self, batch: int) -> float:
        """Errors e_l kept for B-factor curvature (M_err^save, §3.3)."""
        t = self.tokens(batch)
        return 4.0 * t * sum(do for _, do in self.linear_dims)

    def factor_bytes(self) -> float:
        """One copy of all Kronecker factors of a block (M_curv = M_inv)."""
        return 4.0 * sum(di * di + do * do for di, do in self.linear_dims)

    def param_bytes(self) -> float:
        return 4.0 * self.params_per_block


BERT_BASE = TransformerArch("BERT-Base", "BertLayer", 768, 3072, 12, 128)
BERT_LARGE = TransformerArch("BERT-Large", "BertLayer", 1024, 4096, 16, 128)
T5_BASE = TransformerArch("T5-Base", "T5Block", 768, 3072, 12, 512)
T5_LARGE = TransformerArch("T5-Large", "T5Block", 1024, 4096, 16, 512)
OPT_125M = TransformerArch("OPT-125M", "OPTDecoderLayer", 768, 3072, 12, 2048)
OPT_350M = TransformerArch("OPT-350M", "OPTDecoderLayer", 1024, 4096, 16, 2048)

ARCHITECTURES: dict[str, TransformerArch] = {
    a.name: a
    for a in (BERT_BASE, BERT_LARGE, T5_BASE, T5_LARGE, OPT_125M, OPT_350M)
}
