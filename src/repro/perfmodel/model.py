"""The §3.3 analytic performance model.

Computes, for any (architecture, hardware, schedule, B_micro, D, N_micro):

* ``T_pipe = C_f T_f + C_b T_b`` and ``T_bubble = T_pipe - N(T_f + T_b)``;
* throughput (sequences/s) for four execution strategies —
  vanilla pipeline, PipeFisher (bubble filling; overhead = T_prec only),
  "K-FAC + skip" (naive K-FAC skipped to PipeFisher's refresh frequency),
  and naive K-FAC every step;
* the (curvature+inversion)/bubble ratio = pipeline steps needed per
  curvature refresh;
* the memory breakdown, with or without activation recomputation.

Critical-path constants (Table 1): for ``N_micro = D``,
``C_f = C_b = 2D - 1`` for GPipe and 1F1B (with flush), and
``C_f = D, C_b = 2D - 2`` for Chimera.  For ``N_micro > D`` the extra
micro-batches add ``(N - D)`` forward and backward slots on the critical
path in every scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perfmodel.arch import TransformerArch
from repro.perfmodel.calibration import host_overhead
from repro.perfmodel.costs import StageCosts, compute_stage_costs
from repro.perfmodel.hardware import Hardware
from repro.perfmodel.memory import MemoryBreakdown, MemoryModel
from repro.pipeline.spec import get_spec, schedule_specs


def _critical_paths() -> dict:
    """(C_f, C_b) at N_micro = D per schedule, from the registry.

    Schedules whose spec declares no analytic critical path (interleaved)
    are excluded — the simulator covers them instead.
    """
    return {
        name: spec.critical_path
        for name, spec in schedule_specs().items()
        if spec.critical_path is not None
    }


#: Import-time snapshot kept for compatibility; the model itself resolves
#: through the registry so late-registered schedules work too.
SCHEDULE_CRITICAL_PATH = _critical_paths()


@dataclass(frozen=True)
class PerfReport:
    """All §3.3 quantities for one configuration (times in seconds)."""

    t_fwd: float
    t_bwd: float
    t_pipe: float
    t_bubble: float
    t_curv_total: float      # N_micro * T_curv (fits into bubbles)
    t_inv: float             # T_inv (fits into bubbles)
    t_prec: float            # per-step overhead of PipeFisher
    ratio: float             # (curv+inv) / bubble
    refresh_steps: int       # ceil(ratio): steps per curvature refresh
    throughput_pipeline: float
    throughput_pipefisher: float
    throughput_kfac_skip: float
    throughput_kfac_naive: float
    memory: MemoryBreakdown

    @property
    def speedup_vs_kfac_skip(self) -> float:
        """PipeFisher throughput over K-FAC+skip (Fig. 6 bottom row)."""
        return self.throughput_pipefisher / self.throughput_kfac_skip


class PipelinePerfModel:
    """Performance model for one (arch, hardware, schedule) family.

    Parameters
    ----------
    arch, hardware:
        Architecture (Table 3 row) and device model.
    schedule:
        Any registered schedule whose spec declares an analytic critical
        path (``"gpipe"``, ``"1f1b"``, ``"chimera"``, ``"zb1f1b"``).
    layers_per_stage:
        Transformer blocks per pipeline stage (1 in the perf-model figures).
    include_overhead:
        Include the calibrated uncolored host overhead in step time.  The
        paper's Fig. 5/6 model excludes it (pure work model); the
        throughput points in Fig. 7/Table 2 include it.
    """

    def __init__(
        self,
        arch: TransformerArch,
        hardware: Hardware,
        schedule: str = "chimera",
        layers_per_stage: int = 1,
        include_overhead: bool = False,
        factor_blocks: int = 1,
    ) -> None:
        spec = get_spec(schedule)  # unknown names raise, listing all
        if spec.critical_path is None:
            raise ValueError(
                f"unknown schedule {schedule!r}; choose from "
                f"{sorted(_critical_paths())}"
            )
        self._spec = spec
        self.arch = arch
        self.hardware = hardware
        self.schedule = schedule
        self.layers_per_stage = layers_per_stage
        self.include_overhead = include_overhead
        #: Appendix A.2's K-block-diagonal factor approximation.
        self.factor_blocks = factor_blocks

    # -- core quantities -------------------------------------------------------

    def stage_costs(self, b_micro: int) -> StageCosts:
        return compute_stage_costs(
            self.arch,
            self.hardware,
            b_micro,
            layers_per_stage=self.layers_per_stage,
            overhead_s=host_overhead(self.schedule),
            factor_blocks=self.factor_blocks,
        )

    def pipe_time(self, b_micro: int, depth: int, n_micro: int,
                  recompute: bool = False) -> tuple[float, float, float]:
        """Return ``(T_fwd, T_bwd_effective, T_pipe)`` for one step.

        Activation recomputation adds one forward to every backward slot.
        """
        if n_micro < depth:
            raise ValueError(
                f"n_micro ({n_micro}) must be >= pipeline depth ({depth})"
            )
        costs = self.stage_costs(b_micro)
        t_f = costs.t_fwd
        t_b = costs.t_bwd + (t_f if recompute else 0.0)
        cf, cb = self._spec.critical_path(depth)
        extra = n_micro - depth
        t_pipe = (cf + extra) * t_f + (cb + extra) * t_b
        if self.include_overhead:
            t_pipe += costs.t_overhead
        return t_f, t_b, t_pipe

    # -- full report -------------------------------------------------------------

    def report(
        self,
        b_micro: int,
        depth: int,
        n_micro: int | None = None,
        recompute: bool = False,
    ) -> PerfReport:
        """Evaluate every §3.3 quantity for one configuration."""
        n_micro = depth if n_micro is None else n_micro
        costs = self.stage_costs(b_micro)
        t_f, t_b, t_pipe = self.pipe_time(b_micro, depth, n_micro, recompute)
        t_bubble = t_pipe - n_micro * (t_f + t_b)
        if self.include_overhead:
            t_bubble -= costs.t_overhead  # overhead is not usable bubble
        t_curv_total = n_micro * costs.t_curv
        t_inv = costs.t_inv
        t_prec = costs.t_prec
        ratio = (t_curv_total + t_inv) / max(t_bubble, 1e-12)
        refresh = max(1, math.ceil(ratio))

        seqs = n_micro * b_micro
        thr_pipe = seqs / t_pipe
        t_pf = t_pipe + t_prec
        thr_pf = seqs / t_pf
        # K-FAC + skip: curvature+inversion every `refresh` steps, not hidden.
        t_skip = t_pipe + t_prec + (t_curv_total + t_inv) / refresh
        thr_skip = seqs / t_skip
        # Naive K-FAC: all K-FAC work every step, not hidden.
        t_naive = t_pipe + t_prec + t_curv_total + t_inv
        thr_naive = seqs / t_naive

        stages_per_device = self._spec.stages_per_device(1)
        mem = MemoryModel(
            self.arch,
            layers_per_stage=self.layers_per_stage,
            stages_per_device=stages_per_device,
        ).breakdown(b_micro, n_micro, recompute=recompute)

        return PerfReport(
            t_fwd=t_f,
            t_bwd=t_b,
            t_pipe=t_pipe,
            t_bubble=t_bubble,
            t_curv_total=t_curv_total,
            t_inv=t_inv,
            t_prec=t_prec,
            ratio=ratio,
            refresh_steps=refresh,
            throughput_pipeline=thr_pipe,
            throughput_pipefisher=thr_pf,
            throughput_kfac_skip=thr_skip,
            throughput_kfac_naive=thr_naive,
            memory=mem,
        )

    def sweep(
        self,
        b_micro_values: list[int],
        depth_values: list[int],
        n_micro_factor: int = 1,
        recompute: bool = False,
    ) -> dict[tuple[int, int], PerfReport]:
        """Grid of reports keyed by ``(b_micro, depth)`` (Figs. 5, 6, 9-16).

        ``n_micro_factor`` sets N_micro = factor * D (the paper sweeps
        factors 1, 2, 3).
        """
        out: dict[tuple[int, int], PerfReport] = {}
        for b in b_micro_values:
            for d in depth_values:
                out[(b, d)] = self.report(
                    b, d, n_micro=n_micro_factor * d, recompute=recompute
                )
        return out
