"""Work-duration model: maps (architecture, hardware, micro-batch, stage
depth) to the per-work times the pipeline simulator and the §3.3 analytic
model consume.

This replaces the paper's GPU microbenchmarks (Appendix A.1): every work
type's duration = FLOPs / (peak * per-kind efficiency), with efficiencies
calibrated once (see ``calibration.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.arch import TransformerArch
from repro.perfmodel.hardware import Hardware


@dataclass(frozen=True)
class WorkCosts:
    """Durations (seconds) of each work type for ONE transformer block and
    one micro-batch (curvature) — the unit the assignment algorithm places.
    """

    t_fwd: float           # forward, one micro-batch
    t_bwd: float           # backward, one micro-batch
    t_curv_a: float        # curvature for all A factors, one micro-batch
    t_curv_b: float        # curvature for all B factors, one micro-batch
    t_inv: float           # inversion of all factors of the block
    t_prec: float          # preconditioning all gradients of the block

    @property
    def t_curv(self) -> float:
        return self.t_curv_a + self.t_curv_b

    @property
    def t_bwd_input(self) -> float:
        """Input-grad (dgrad) half of the backward, for zero-bubble
        schedules.  Transformer blocks are GEMM-dominated and dgrad and
        wgrad each replay roughly the forward's FLOPs, so the split is
        even (0.5 is exact in floats, keeping the halves' sum exact)."""
        return 0.5 * self.t_bwd

    @property
    def t_bwd_weight(self) -> float:
        """Weight-grad (wgrad) half of the backward (deferrable work)."""
        return self.t_bwd - self.t_bwd_input


@dataclass(frozen=True)
class StageCosts:
    """Durations for one pipeline stage (= ``layers_per_stage`` blocks)."""

    block: WorkCosts
    layers_per_stage: int
    #: Uncolored host-side per-step overhead (optimizer math, data loading,
    #: Python/launch overhead) — calibrated; counts against GPU utilization.
    t_overhead: float
    #: Kernel-active fraction inside fwd/bwd work (utilization metric).
    kernel_density: float

    @property
    def t_fwd(self) -> float:
        return self.block.t_fwd * self.layers_per_stage

    @property
    def t_bwd(self) -> float:
        return self.block.t_bwd * self.layers_per_stage

    @property
    def t_bwd_input(self) -> float:
        """Input-grad half of the stage backward (zero-bubble B tasks)."""
        return self.block.t_bwd_input * self.layers_per_stage

    @property
    def t_bwd_weight(self) -> float:
        """Weight-grad half of the stage backward (zero-bubble W tasks)."""
        return self.block.t_bwd_weight * self.layers_per_stage

    @property
    def t_curv(self) -> float:
        """Curvature for the whole stage, one micro-batch."""
        return self.block.t_curv * self.layers_per_stage

    @property
    def t_inv(self) -> float:
        """Inversion for the whole stage."""
        return self.block.t_inv * self.layers_per_stage

    @property
    def t_prec(self) -> float:
        """Precondition for the whole stage (every step, critical path)."""
        return self.block.t_prec * self.layers_per_stage


#: Host/optimizer overhead per optimization step, seconds.  Calibrated so
#: the simulated GPipe BERT-Base profile reproduces the paper's Fig. 3
#: baseline GPU utilization (41.7%); see calibration.py and EXPERIMENTS.md.
DEFAULT_OVERHEAD_S = 0.145


#: Kernel-launch + dispatch latency per CUDA kernel (host-side floor that
#: dominates tiny micro-batches, giving Fig. 6's sub-linear small-B_micro
#: throughput).
KERNEL_LAUNCH_S = 7e-6

#: Approximate kernel counts per transformer block for each work type.
KERNELS_PER_BLOCK = {
    "fwd": 60,
    "bwd": 110,
    "curv_a": 6,
    "curv_b": 6,
    "inv": 12,
    "prec": 18,
}


def compute_block_costs(
    arch: TransformerArch, hw: Hardware, b_micro: int, factor_blocks: int = 1
) -> WorkCosts:
    """Per-block work durations: roofline time plus kernel-launch floor.

    ``factor_blocks`` applies Appendix A.2's K-block-diagonal factor
    approximation to the inversion work.
    """
    if b_micro <= 0:
        raise ValueError(f"b_micro must be positive, got {b_micro}")
    k = KERNELS_PER_BLOCK
    launch = KERNEL_LAUNCH_S
    return WorkCosts(
        t_fwd=arch.forward_flops(b_micro) / hw.flops_fwd + k["fwd"] * launch,
        t_bwd=arch.backward_flops(b_micro) / hw.flops_fwd + k["bwd"] * launch,
        t_curv_a=arch.curvature_flops_a(b_micro) / hw.flops_gemm
        + k["curv_a"] * launch,
        t_curv_b=arch.curvature_flops_b(b_micro) / hw.flops_gemm
        + k["curv_b"] * launch,
        t_inv=arch.inversion_flops(factor_blocks) / hw.flops_inv
        + k["inv"] * factor_blocks * launch,
        t_prec=arch.precondition_flops() / hw.flops_gemm + k["prec"] * launch,
    )


def compute_stage_costs(
    arch: TransformerArch,
    hw: Hardware,
    b_micro: int,
    layers_per_stage: int = 1,
    overhead_s: float = DEFAULT_OVERHEAD_S,
    factor_blocks: int = 1,
) -> StageCosts:
    """Stage-level durations for the simulator and analytic model.

    Parameters
    ----------
    arch, hw, b_micro:
        Architecture, hardware, micro-batch size.
    layers_per_stage:
        Blocks per pipeline stage (Fig. 3/4 use 3; the perf-model figures
        use 1).
    overhead_s:
        Uncolored per-step host overhead.
    """
    if layers_per_stage <= 0:
        raise ValueError(f"layers_per_stage must be positive, got {layers_per_stage}")
    return StageCosts(
        block=compute_block_costs(arch, hw, b_micro, factor_blocks=factor_blocks),
        layers_per_stage=layers_per_stage,
        t_overhead=overhead_s,
        kernel_density=hw.kernel_density,
    )
