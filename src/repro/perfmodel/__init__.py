"""Analytic performance model (paper §3.3, Figs. 5, 6, 9-16).

Predicts per-step time, memory, throughput, and the
(curvature+inversion)/bubble ratio for any combination of

* Transformer architecture (Table 3: BERT/T5/OPT, Base/Large),
* hardware (NVIDIA P100, V100, RTX3090),
* pipeline schedule (GPipe, 1F1B, Chimera), and
* PipeFisher vs naive K-FAC vs K-FAC+skip execution strategies.
"""

from repro.perfmodel.hardware import Hardware, P100, V100, RTX3090, HARDWARE
from repro.perfmodel.arch import TransformerArch, ARCHITECTURES
from repro.perfmodel.costs import WorkCosts, StageCosts, compute_stage_costs
from repro.perfmodel.memory import MemoryModel, MemoryBreakdown
from repro.perfmodel.model import (
    PipelinePerfModel,
    PerfReport,
    SCHEDULE_CRITICAL_PATH,
)

__all__ = [
    "Hardware",
    "P100",
    "V100",
    "RTX3090",
    "HARDWARE",
    "TransformerArch",
    "ARCHITECTURES",
    "WorkCosts",
    "StageCosts",
    "compute_stage_costs",
    "MemoryModel",
    "MemoryBreakdown",
    "PipelinePerfModel",
    "PerfReport",
    "SCHEDULE_CRITICAL_PATH",
]
