"""Memory-consumption model (paper §3.3).

Worst-case per-device memory:

    M_pipe   = 2 * (D * W / #devices) * M_theta + N_micro * M_act + M_err^peak
    M_kfac^+ = M_curv + M_inv + N_micro * M_err^save

With activation recomputation (R), stored per-micro-batch activations
shrink to the stage-boundary tensor, at the cost of one extra forward per
backward; M_err^save, M_curv and M_inv then dominate (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.arch import TransformerArch


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-device memory in bytes, one field per bar segment of Fig. 5a."""

    param_grad: float      # 2 * M_theta * stages/device ("param+grad")
    act: float             # N_micro * M_act (or boundary tensors under R)
    peak_err: float        # transient backward errors
    save_err: float        # N_micro * M_err^save kept for B factors
    curv_inv: float        # M_curv + M_inv

    @property
    def pipeline_total(self) -> float:
        """M_pipe — memory without K-FAC."""
        return self.param_grad + self.act + self.peak_err

    @property
    def kfac_extra(self) -> float:
        """M_kfac^+ — additional memory of PipeFisher."""
        return self.curv_inv + self.save_err

    @property
    def total(self) -> float:
        return self.pipeline_total + self.kfac_extra

    def total_gb(self) -> float:
        return self.total / 1e9


@dataclass(frozen=True)
class MemoryModel:
    """Memory model for one pipeline stage of ``layers_per_stage`` blocks.

    Parameters
    ----------
    arch:
        Transformer architecture.
    layers_per_stage:
        Blocks per stage.
    stages_per_device:
        ``D * W / #devices`` in the paper's formula — 1 for GPipe/1F1B,
        2 for Chimera's bidirectional pipelines.
    """

    arch: TransformerArch
    layers_per_stage: int = 1
    stages_per_device: int = 1

    def breakdown(
        self,
        b_micro: int,
        n_micro: int,
        recompute: bool = False,
        with_kfac: bool = True,
    ) -> MemoryBreakdown:
        """Worst-case memory for ``n_micro`` in-flight micro-batches."""
        if b_micro <= 0 or n_micro <= 0:
            raise ValueError("b_micro and n_micro must be positive")
        a = self.arch
        L = self.layers_per_stage
        S = self.stages_per_device

        param_grad = 2.0 * S * L * a.param_bytes()
        if recompute:
            # Only the stage input is stored per micro-batch; full
            # activations exist transiently for one micro-batch during its
            # recomputed backward.
            act = n_micro * S * a.boundary_activation_bytes(b_micro) \
                + L * a.activation_bytes(b_micro)
        else:
            act = n_micro * S * L * a.activation_bytes(b_micro)
        peak_err = a.peak_error_bytes(b_micro)
        if with_kfac:
            save_err = n_micro * S * L * a.saved_error_bytes(b_micro)
            curv_inv = 2.0 * S * L * a.factor_bytes()
        else:
            save_err = 0.0
            curv_inv = 0.0
        return MemoryBreakdown(
            param_grad=param_grad,
            act=act,
            peak_err=peak_err,
            save_err=save_err,
            curv_inv=curv_inv,
        )

    def fits(self, memory_gb: float, b_micro: int, n_micro: int,
             recompute: bool = False, with_kfac: bool = True) -> bool:
        """Whether the configuration fits in ``memory_gb`` of device memory."""
        bd = self.breakdown(b_micro, n_micro, recompute=recompute, with_kfac=with_kfac)
        return bd.total_gb() <= memory_gb
