"""Calibration constants anchoring the roofline model to the paper's
published measurements.

The paper measures work durations by microbenchmark on real GPUs
(Appendix A.1); we have no GPUs, so a small set of constants is fitted
*once* against the paper's published profile numbers and then held fixed
for every prediction:

* ``eff_fwd`` (hardware.py): fitted so a BERT-Base stage forward at
  B_micro=32, S=128 on "P100" ~29 ms, matching Fig. 3's ~87 ms
  fwd+bwd slot within a ~700 ms GPipe step.
* ``eff_gemm``/``eff_inv``: fitted so curvature+inversion for a 3-layer
  BERT-Base stage drains in 2 pipeline steps (§3.1 reports a maximum of
  2), and Fig. 5's (curv+inv)/bubble ratios land in the paper's 2-10 band.
* ``kernel_density``: Nsight counts only kernel-active time as utilized;
  0.88 reproduces GPipe/Adam's 41.7% baseline utilization (Fig. 3).
* **host overhead**: uncolored per-step host time (optimizer invocation,
  data loading, launch overhead).  The GPipe/1F1B runs in the paper's
  codebase show substantially larger inter-step gaps than the authors'
  optimized Chimera implementation, hence per-family values — declared on
  each schedule's :class:`~repro.pipeline.spec.ScheduleSpec`
  (``host_overhead_s``) and resolved through the registry here.
* ``SYNC_KERNEL_DENSITY``: allreduce (sync-grad/sync-curvature) intervals
  are partially kernel-active; 0.75 interpolates between the 2-replica
  (Fig. 4) and 64-replica (Fig. 7) observations.

Everything downstream — PipeFisher utilizations, refresh intervals,
throughput sweeps, Table 2 — is *predicted* from these, not fitted.
EXPERIMENTS.md records paper-vs-model for each figure.
"""

from __future__ import annotations

#: Fraction of an allreduce interval that is kernel-active (colored).
SYNC_KERNEL_DENSITY = 0.75


def host_overhead(schedule: str) -> float:
    """Per-step uncolored host overhead of a schedule family (seconds).

    Sourced from the schedule registry: every registered
    :class:`~repro.pipeline.spec.ScheduleSpec` declares its
    ``host_overhead_s``.  Unknown names raise ``ValueError`` listing the
    registered schedules.
    """
    from repro.pipeline.spec import get_spec

    return get_spec(schedule).host_overhead_s
