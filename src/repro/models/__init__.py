"""Model definitions: BERT for pretraining plus pipeline-stage partitioning."""

from repro.models.bert import (
    BertConfig,
    BertEmbeddings,
    BertEncoder,
    BertPooler,
    BertPreTrainingHeads,
    BertForPreTraining,
)
from repro.models.partition import partition_layers, StagePartition

__all__ = [
    "BertConfig",
    "BertEmbeddings",
    "BertEncoder",
    "BertPooler",
    "BertPreTrainingHeads",
    "BertForPreTraining",
    "partition_layers",
    "StagePartition",
]
