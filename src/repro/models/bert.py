"""BERT for pretraining (Devlin et al. 2019) in the repro NN framework.

Implements the full pretraining model: token/position/segment embeddings,
the encoder stack of :class:`repro.nn.BertLayer` blocks, the pooler, the
MLM head (dense + GELU + LayerNorm + vocabulary decoder tied to the token
embedding) and the NSP classifier.

``BertConfig`` carries the named presets the paper evaluates (Base, Large)
plus arbitrarily scaled-down variants for CPU-feasible convergence
experiments (see DESIGN.md §2 on substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import (
    BertLayer,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Tanh,
    masked_lm_loss,
    next_sentence_loss,
)
from repro.nn.activations import GELU
from repro.tensor import Tensor


@dataclass
class BertConfig:
    """Hyperparameters of a BERT model.

    Defaults match BERT-Base; use the classmethod presets for named sizes.
    """

    vocab_size: int = 30522
    hidden_size: int = 768
    num_hidden_layers: int = 12
    num_attention_heads: int = 12
    intermediate_size: int = 3072
    max_position_embeddings: int = 512
    type_vocab_size: int = 2
    hidden_dropout: float = 0.1
    attention_dropout: float = 0.1
    seed: int = 0

    @classmethod
    def bert_base(cls, **overrides) -> "BertConfig":
        return cls(**overrides)

    @classmethod
    def bert_large(cls, **overrides) -> "BertConfig":
        params = dict(
            hidden_size=1024,
            num_hidden_layers=24,
            num_attention_heads=16,
            intermediate_size=4096,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def tiny(cls, vocab_size: int = 512, seed: int = 0, **overrides) -> "BertConfig":
        """A CPU-trainable model preserving BERT's structure (see DESIGN.md)."""
        params = dict(
            vocab_size=vocab_size,
            hidden_size=64,
            num_hidden_layers=2,
            num_attention_heads=4,
            intermediate_size=256,
            max_position_embeddings=64,
            hidden_dropout=0.0,
            attention_dropout=0.0,
            seed=seed,
        )
        params.update(overrides)
        return cls(**params)


class BertEmbeddings(Module):
    """Sum of token, position and segment embeddings, then LayerNorm+dropout."""

    def __init__(self, config: BertConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.word_embeddings = Embedding(config.vocab_size, config.hidden_size, rng=rng)
        self.position_embeddings = Embedding(
            config.max_position_embeddings, config.hidden_size, rng=rng
        )
        self.token_type_embeddings = Embedding(
            config.type_vocab_size, config.hidden_size, rng=rng
        )
        self.norm = LayerNorm(config.hidden_size)
        self.dropout = Dropout(config.hidden_dropout, rng=rng)

    def forward(
        self, input_ids: np.ndarray, token_type_ids: np.ndarray | None = None
    ) -> Tensor:
        input_ids = np.asarray(input_ids)
        batch, seq = input_ids.shape
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        if token_type_ids is None:
            token_type_ids = np.zeros((batch, seq), dtype=np.int64)
        x = (
            self.word_embeddings(input_ids)
            + self.position_embeddings(positions)
            + self.token_type_embeddings(token_type_ids)
        )
        return self.dropout(self.norm(x))


class BertEncoder(Module):
    """Stack of ``num_hidden_layers`` :class:`BertLayer` blocks."""

    def __init__(self, config: BertConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.layers = ModuleList(
            BertLayer(
                config.hidden_size,
                config.num_attention_heads,
                config.intermediate_size,
                dropout=config.hidden_dropout,
                rng=rng,
            )
            for _ in range(config.num_hidden_layers)
        )

    def forward(self, x: Tensor, attention_mask: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, attention_mask)
        return x


class BertPooler(Module):
    """Dense + tanh on the [CLS] (first) token, feeding the NSP classifier."""

    def __init__(self, config: BertConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.dense = Linear(config.hidden_size, config.hidden_size, rng=rng)
        self.activation = Tanh()

    def forward(self, hidden: Tensor) -> Tensor:
        cls = hidden[:, 0, :]
        return self.activation(self.dense(cls))


class BertPreTrainingHeads(Module):
    """MLM transform + tied vocabulary decoder, and the NSP classifier.

    The vocabulary projection reuses (ties) the word-embedding matrix with a
    separate output bias, as in the original BERT.  Note §4 of the paper:
    K-FAC is *not* applied to this final classification head because B_L
    would be vocab_size x vocab_size; the tied projection here is likewise
    expressed directly (not as a ``Linear``), so the K-FAC layer scan never
    sees it.
    """

    def __init__(
        self, config: BertConfig, word_embedding_weight: Parameter, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.transform_dense = Linear(config.hidden_size, config.hidden_size, rng=rng)
        self.transform_act = GELU()
        self.transform_norm = LayerNorm(config.hidden_size)
        self.decoder_weight = word_embedding_weight  # tied; registered in embeddings
        self.decoder_bias = Parameter(np.zeros(config.vocab_size, dtype=np.float32))
        self.seq_relationship = Linear(config.hidden_size, 2, rng=rng)

    def forward(self, hidden: Tensor, pooled: Tensor) -> tuple[Tensor, Tensor]:
        x = self.transform_norm(self.transform_act(self.transform_dense(hidden)))
        mlm_logits = x @ self.decoder_weight.T + self.decoder_bias
        nsp_logits = self.seq_relationship(pooled)
        return mlm_logits, nsp_logits


class BertForPreTraining(Module):
    """Complete BERT pretraining model: MLM + NSP objective."""

    def __init__(self, config: BertConfig) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.embeddings = BertEmbeddings(config, rng)
        self.encoder = BertEncoder(config, rng)
        self.pooler = BertPooler(config, rng)
        self.heads = BertPreTrainingHeads(config, self.embeddings.word_embeddings.weight, rng)

    def forward(
        self,
        input_ids: np.ndarray,
        token_type_ids: np.ndarray | None = None,
        attention_mask: np.ndarray | None = None,
    ) -> tuple[Tensor, Tensor]:
        """Return ``(mlm_logits, nsp_logits)``."""
        x = self.embeddings(input_ids, token_type_ids)
        hidden = self.encoder(x, attention_mask)
        pooled = self.pooler(hidden)
        return self.heads(hidden, pooled)

    def loss(
        self,
        input_ids: np.ndarray,
        mlm_labels: np.ndarray,
        nsp_labels: np.ndarray,
        token_type_ids: np.ndarray | None = None,
        attention_mask: np.ndarray | None = None,
    ) -> tuple[Tensor, dict[str, float]]:
        """Compute the summed pretraining loss and a metrics dict."""
        mlm_logits, nsp_logits = self.forward(input_ids, token_type_ids, attention_mask)
        mlm = masked_lm_loss(mlm_logits, mlm_labels)
        nsp = next_sentence_loss(nsp_logits, nsp_labels)
        total = mlm + nsp
        return total, {
            "loss": float(total.item()),
            "mlm_loss": float(mlm.item()),
            "nsp_loss": float(nsp.item()),
        }

    def encoder_linear_layers(self) -> list[tuple[str, Linear]]:
        """Named Linear layers eligible for K-FAC (paper §4's selection rule).

        All fully-connected layers except the final classification head —
        which in this implementation is a tied matmul, not a Linear — so the
        rule reduces to "every Linear in the model".
        """
        return [
            (name, m) for name, m in self.named_modules() if isinstance(m, Linear)
        ]
