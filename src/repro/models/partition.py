"""Pipeline stage partitioning.

Splits a transformer's encoder blocks into ``D`` contiguous stages
("sequences of the layers", paper §2.1).  The paper's experiments use equal
stages (e.g. 12 layers / 4 stages = 3 layers per stage for Fig. 3); the
partitioner also handles non-divisible cases by distributing the remainder
to the earliest stages, and reports the per-stage layer lists used by both
the numeric pipeline executor and the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StagePartition:
    """Assignment of transformer block indices to pipeline stages."""

    num_layers: int
    num_stages: int
    stage_layers: tuple[tuple[int, ...], ...]

    @property
    def layers_per_stage(self) -> tuple[int, ...]:
        return tuple(len(s) for s in self.stage_layers)

    def stage_of_layer(self, layer: int) -> int:
        """Return the stage index owning ``layer``."""
        for stage, layers in enumerate(self.stage_layers):
            if layer in layers:
                return stage
        raise IndexError(f"layer {layer} not in any stage (num_layers={self.num_layers})")


def partition_layers(num_layers: int, num_stages: int) -> StagePartition:
    """Split ``num_layers`` blocks into ``num_stages`` contiguous stages.

    Raises ``ValueError`` if there are more stages than layers.
    """
    if num_stages <= 0:
        raise ValueError(f"num_stages must be positive, got {num_stages}")
    if num_layers < num_stages:
        raise ValueError(
            f"cannot split {num_layers} layers into {num_stages} stages"
        )
    base, rem = divmod(num_layers, num_stages)
    stages: list[tuple[int, ...]] = []
    start = 0
    for s in range(num_stages):
        count = base + (1 if s < rem else 0)
        stages.append(tuple(range(start, start + count)))
        start += count
    return StagePartition(num_layers, num_stages, tuple(stages))
