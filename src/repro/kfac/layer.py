"""Per-layer K-FAC state: factors, inverses, and staleness bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kfac.factors import (
    KroneckerFactor,
    compute_factor_from_rows,
    concat_row_batches,
)
from repro.kfac.inverse import damped_cholesky_inverse, pi_damping


@dataclass
class KFACLayerState:
    """Curvature state for one linear layer.

    Tracks the Kronecker factors ``A`` (inputs, possibly bias-augmented) and
    ``B`` (output-grad errors), their damped inverses, and how stale the
    inverses are — the paper's §3.1 uses previously-computed inverses for
    preconditioning whenever fresh ones are not yet ready.
    """

    name: str
    din: int
    dout: int
    include_bias: bool = True
    stat_decay: float = 0.0
    a_factor: KroneckerFactor = field(init=False)
    b_factor: KroneckerFactor = field(init=False)
    a_inv: np.ndarray | None = None
    b_inv: np.ndarray | None = None
    #: Steps since the inverses were last refreshed (-1 = never computed).
    inverse_staleness: int = -1

    def __post_init__(self) -> None:
        a_dim = self.din + (1 if self.include_bias else 0)
        self.a_factor = KroneckerFactor(a_dim, stat_decay=self.stat_decay)
        self.b_factor = KroneckerFactor(self.dout, stat_decay=self.stat_decay)

    # -- curvature work ---------------------------------------------------------

    def update_curvature(
        self, input_batches: list[np.ndarray], grad_batches: list[np.ndarray],
        loss_scale: float = 1.0,
    ) -> None:
        """Refresh A and B from captured micro-batch rows.

        Each factor is one concatenated ``rows.T @ rows`` matmul (see
        :meth:`KroneckerFactor.accumulate_microbatches`); the loss scale is
        folded into the B factor as ``loss_scale**2`` rather than by
        rescaling every gradient row.

        ``loss_scale`` converts mean-loss output gradients back to
        per-example error signals (multiply by the number of rows the mean
        was taken over); pass 1.0 when the loss is a sum.
        """
        if not input_batches or not grad_batches:
            raise ValueError(f"layer {self.name}: no captured rows")
        self.a_factor.accumulate_microbatches(input_batches, include_bias=self.include_bias)
        grad_rows = concat_row_batches(grad_batches)
        b_batch = compute_factor_from_rows(grad_rows)
        b_batch = b_batch * np.float32(loss_scale) * np.float32(loss_scale)
        self.b_factor.update(b_batch)

    # -- inversion work -----------------------------------------------------------

    def update_inverses(self, damping: float, use_pi: bool = True) -> None:
        """Recompute the damped inverses from the current factors."""
        if self.a_factor.updates == 0 or self.b_factor.updates == 0:
            raise RuntimeError(f"layer {self.name}: inversion before any curvature")
        if use_pi:
            da, db = pi_damping(self.a_factor.value, self.b_factor.value, damping)
        else:
            da = db = float(np.sqrt(damping))
        self.a_inv = damped_cholesky_inverse(self.a_factor.value, da)
        self.b_inv = damped_cholesky_inverse(self.b_factor.value, db)
        self.inverse_staleness = 0

    def install_inverses(self, a_inv: np.ndarray, b_inv: np.ndarray) -> None:
        """Install externally-computed inverses (the batched group path)."""
        self.a_inv = a_inv
        self.b_inv = b_inv
        self.inverse_staleness = 0

    def tick_staleness(self) -> None:
        """Mark one optimization step elapsed since the last inverse refresh."""
        if self.inverse_staleness >= 0:
            self.inverse_staleness += 1

    @property
    def ready(self) -> bool:
        """Whether preconditioning can run (inverses exist, fresh or stale)."""
        return self.a_inv is not None and self.b_inv is not None

    # -- precondition work -----------------------------------------------------------

    def precondition(
        self, weight_grad: np.ndarray, bias_grad: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Apply ``B^{-1} G A^{-1}`` to a (dout, din) weight gradient.

        When ``include_bias`` the bias gradient is folded in as the last
        column of the homogeneous-coordinate gradient matrix.
        """
        if not self.ready:
            raise RuntimeError(f"layer {self.name}: precondition before any inversion")
        if weight_grad.shape != (self.dout, self.din):
            raise ValueError(
                f"layer {self.name}: grad shape {weight_grad.shape} != "
                f"({self.dout}, {self.din})"
            )
        if self.include_bias and bias_grad is not None:
            g = np.concatenate([weight_grad, bias_grad.reshape(-1, 1)], axis=1)
        else:
            g = weight_grad
        nat = self.b_inv @ g @ self.a_inv
        if self.include_bias and bias_grad is not None:
            return nat[:, :-1].astype(np.float32), nat[:, -1].astype(np.float32)
        return nat.astype(np.float32), bias_grad
