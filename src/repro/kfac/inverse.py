"""Factor inversion (the paper's *inversion work*).

Each Kronecker factor is symmetric PSD, so the paper inverts via Cholesky:
``torch.linalg.cholesky`` + ``cholesky_inverse``.  The per-matrix reference
(:func:`damped_cholesky_inverse`) uses SciPy's ``cho_factor``/``cho_solve``
against the identity in float64, with Tikhonov damping to guarantee
positive definiteness.

The batched path (:func:`batched_damped_cholesky_inverse`) inverts a
``(L, d, d)`` stack of same-dimension factors in float32 through LAPACK's
``spotrf``/``spotri`` (Cholesky factorize + triangular inverse-multiply,
~``d^3`` FLOPs exploiting symmetry).  A stacked ``np.linalg.cholesky`` +
``np.linalg.solve`` against a broadcast identity was benchmarked first and
is *slower* than the per-matrix SciPy loop on single-threaded OpenBLAS:
``solve`` runs a pivoted LU on the triangular factor, spending ~3x the
FLOPs that ``potri`` needs, so the direct Cholesky-inverse LAPACK driver
is the one that actually wins (1.5-3x; see ``BENCH_kfac.json``).

Damping follows Martens & Grosse (2015) §6.2: with overall damping
``lambda``, the factors receive ``pi * sqrt(lambda)`` and
``sqrt(lambda) / pi`` respectively, where
``pi = sqrt((trace(A)/dim_A) / (trace(B)/dim_B))`` balances the two.
:func:`batched_pi_damping` computes the split for a whole layer group from
stacked traces in one pass.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla
from scipy.linalg import lapack as _lapack


def damped_cholesky_inverse(mat: np.ndarray, damping: float) -> np.ndarray:
    """Return ``(mat + damping * I)^{-1}`` via Cholesky factorization.

    Parameters
    ----------
    mat:
        Symmetric positive semidefinite ``(d, d)`` matrix.
    damping:
        Non-negative Tikhonov term added to the diagonal.
    """
    if damping < 0:
        raise ValueError(f"damping must be non-negative, got {damping}")
    d = mat.shape[0]
    if mat.shape != (d, d):
        raise ValueError(f"expected square matrix, got {mat.shape}")
    damped = mat.astype(np.float64) + damping * np.eye(d)
    try:
        c, low = sla.cho_factor(damped, check_finite=False)
        inv = sla.cho_solve((c, low), np.eye(d), check_finite=False)
    except sla.LinAlgError:
        # PSD estimate degraded by fp error: retry with boosted damping.
        boosted = damped + max(damping, 1e-4) * 10.0 * np.eye(d)
        c, low = sla.cho_factor(boosted, check_finite=False)
        inv = sla.cho_solve((c, low), np.eye(d), check_finite=False)
    return inv.astype(np.float32)


def batched_damped_cholesky_inverse(
    stack: np.ndarray, dampings: np.ndarray | float
) -> np.ndarray:
    """Damped Cholesky inverses of a ``(L, d, d)`` factor stack, in float32.

    Parameters
    ----------
    stack:
        ``(L, d, d)`` symmetric PSD matrices sharing one dimension (a layer
        group keyed by factor size).
    dampings:
        Scalar or ``(L,)`` per-matrix non-negative diagonal damping.

    Any matrix whose float32 factorization fails (PSD estimate degraded
    past float32's reach) falls back to the float64 reference path with
    its boosted-damping retry, so the batch never loses the robustness of
    :func:`damped_cholesky_inverse`.
    """
    stack = np.asarray(stack)
    if stack.ndim != 3 or stack.shape[1] != stack.shape[2]:
        raise ValueError(f"expected (L, d, d) stack, got shape {stack.shape}")
    n_mats, d = stack.shape[0], stack.shape[1]
    damp = np.broadcast_to(np.asarray(dampings, dtype=np.float64), (n_mats,))
    if np.any(damp < 0):
        raise ValueError("damping must be non-negative")

    damped = stack.astype(np.float32, copy=True)
    idx = np.arange(d)
    damped[:, idx, idx] += damp.astype(np.float32)[:, None]

    out = np.empty((n_mats, d, d), dtype=np.float32)
    for i in range(n_mats):
        c, info = _lapack.spotrf(damped[i], lower=1, overwrite_a=False)
        if info == 0:
            inv, info = _lapack.spotri(c, lower=1, overwrite_c=True)
        if info != 0:
            out[i] = damped_cholesky_inverse(stack[i], float(damp[i]))
            continue
        out[i] = inv
    # potri fills one triangle; mirror it across the diagonal in one pass.
    lower = np.tril(out)
    out = lower + np.transpose(np.tril(out, -1), (0, 2, 1))
    return out


def pi_damping(a: np.ndarray, b: np.ndarray, damping: float) -> tuple[float, float]:
    """Split overall ``damping`` between factors A and B (Martens & Grosse).

    Returns ``(damping_A, damping_B)`` with
    ``damping_A * damping_B = damping`` and the ratio set by the average
    trace of each factor.
    """
    tr_a = float(np.trace(a)) / a.shape[0]
    tr_b = float(np.trace(b)) / b.shape[0]
    if tr_a <= 0 or tr_b <= 0:
        root = float(np.sqrt(damping))
        return root, root
    pi = float(np.sqrt(tr_a / tr_b))
    root = float(np.sqrt(damping))
    return root * pi, root / pi


def batched_pi_damping(
    a_traces: np.ndarray,
    a_dims: np.ndarray | int,
    b_traces: np.ndarray,
    b_dims: np.ndarray | int,
    damping: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`pi_damping` over per-layer stacked factor traces.

    Parameters
    ----------
    a_traces, b_traces:
        ``(L,)`` traces of each layer's A and B factor (from
        ``np.trace(stack, axis1=1, axis2=2)`` on the grouped stacks).
    a_dims, b_dims:
        Factor side lengths, scalar or ``(L,)``.
    damping:
        Overall damping ``lambda``.

    Returns ``(damping_A, damping_B)`` arrays; layers whose average trace
    is non-positive fall back to the symmetric ``sqrt(lambda)`` split,
    matching the per-layer reference.
    """
    tr_a = np.asarray(a_traces, dtype=np.float64) / np.asarray(a_dims)
    tr_b = np.asarray(b_traces, dtype=np.float64) / np.asarray(b_dims)
    root = float(np.sqrt(damping))
    ok = (tr_a > 0) & (tr_b > 0)
    pi = np.sqrt(np.where(ok, tr_a / np.where(tr_b > 0, tr_b, 1.0), 1.0))
    return root * pi, root / pi


def batched_pair_inverses(
    pairs: list[tuple[np.ndarray, np.ndarray]],
    damping: float,
    use_pi: bool = True,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Invert per-layer ``(A, B)`` factor pairs, grouped by dimension.

    The inversion work for a whole model: pi-split dampings are computed
    vectorially from stacked traces, then every distinct factor dimension
    is inverted as one float32 Cholesky batch.  Returns ``(a_inv, b_inv)``
    float32 pairs in input order.
    """
    n = len(pairs)
    if n == 0:
        return []
    # Group factor matrices (either side) by dimension.
    dim_groups: dict[int, list[tuple[int, int]]] = {}
    for i, (a, b) in enumerate(pairs):
        dim_groups.setdefault(a.shape[0], []).append((i, 0))
        dim_groups.setdefault(b.shape[0], []).append((i, 1))

    stacks = {
        dim: np.stack([pairs[i][side] for i, side in members])
        for dim, members in dim_groups.items()
    }
    if use_pi:
        tr_a = np.empty(n)
        tr_b = np.empty(n)
        for dim, members in dim_groups.items():
            traces = np.trace(stacks[dim], axis1=1, axis2=2, dtype=np.float64)
            for (i, side), t in zip(members, traces):
                (tr_a if side == 0 else tr_b)[i] = t
        a_dims = np.array([a.shape[0] for a, _ in pairs])
        b_dims = np.array([b.shape[0] for _, b in pairs])
        damp_a, damp_b = batched_pi_damping(tr_a, a_dims, tr_b, b_dims, damping)
    else:
        root = float(np.sqrt(damping))
        damp_a = np.full(n, root)
        damp_b = np.full(n, root)

    out: list[list[np.ndarray | None]] = [[None, None] for _ in range(n)]
    for dim, members in dim_groups.items():
        damp = np.array(
            [(damp_a if side == 0 else damp_b)[i] for i, side in members]
        )
        inv_stack = batched_damped_cholesky_inverse(stacks[dim], damp)
        for j, (i, side) in enumerate(members):
            out[i][side] = inv_stack[j]
    return [(a, b) for a, b in out]  # type: ignore[misc]
