"""Factor inversion (the paper's *inversion work*).

Each Kronecker factor is symmetric PSD, so the paper inverts via Cholesky:
``torch.linalg.cholesky`` + ``cholesky_inverse``.  Here we use SciPy's
``cho_factor``/``cho_solve`` against the identity, with Tikhonov damping to
guarantee positive definiteness.

Damping follows Martens & Grosse (2015) §6.2: with overall damping
``lambda``, the factors receive ``pi * sqrt(lambda)`` and
``sqrt(lambda) / pi`` respectively, where
``pi = sqrt((trace(A)/dim_A) / (trace(B)/dim_B))`` balances the two.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla


def damped_cholesky_inverse(mat: np.ndarray, damping: float) -> np.ndarray:
    """Return ``(mat + damping * I)^{-1}`` via Cholesky factorization.

    Parameters
    ----------
    mat:
        Symmetric positive semidefinite ``(d, d)`` matrix.
    damping:
        Non-negative Tikhonov term added to the diagonal.
    """
    if damping < 0:
        raise ValueError(f"damping must be non-negative, got {damping}")
    d = mat.shape[0]
    if mat.shape != (d, d):
        raise ValueError(f"expected square matrix, got {mat.shape}")
    damped = mat.astype(np.float64) + damping * np.eye(d)
    try:
        c, low = sla.cho_factor(damped, check_finite=False)
        inv = sla.cho_solve((c, low), np.eye(d), check_finite=False)
    except sla.LinAlgError:
        # PSD estimate degraded by fp error: retry with boosted damping.
        boosted = damped + max(damping, 1e-4) * 10.0 * np.eye(d)
        c, low = sla.cho_factor(boosted, check_finite=False)
        inv = sla.cho_solve((c, low), np.eye(d), check_finite=False)
    return inv.astype(np.float32)


def pi_damping(a: np.ndarray, b: np.ndarray, damping: float) -> tuple[float, float]:
    """Split overall ``damping`` between factors A and B (Martens & Grosse).

    Returns ``(damping_A, damping_B)`` with
    ``damping_A * damping_B = damping`` and the ratio set by the average
    trace of each factor.
    """
    tr_a = float(np.trace(a)) / a.shape[0]
    tr_b = float(np.trace(b)) / b.shape[0]
    if tr_a <= 0 or tr_b <= 0:
        root = float(np.sqrt(damping))
        return root, root
    pi = float(np.sqrt(tr_a / tr_b))
    root = float(np.sqrt(damping))
    return root * pi, root / pi
