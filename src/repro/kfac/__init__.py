"""K-FAC: Kronecker-Factored Approximate Curvature (Martens & Grosse 2015).

This package implements the paper's §2.3 in full:

* **Curvature work** — accumulating the Kronecker factors
  ``A_l = U_A U_A^T`` (from layer inputs) and ``B_l = U_B U_B^T`` (from
  output-gradient error signals) per linear layer.
* **Inversion work** — damped Cholesky inversion of each factor.
* **Precondition work** — ``B_l^{-1} G_l A_l^{-1}`` applied to fresh
  gradients, possibly with stale inverses (§2.3.1).

plus the distributed execution schemes of §2.3.2 (data+inversion-parallel
K-FAC, CPU offloading) in emulated form, which the pipeline benchmarks use
as baselines.
"""

from repro.kfac.factors import (
    KroneckerFactor,
    batched_factor_from_rows,
    compute_factor_from_rows,
    concat_row_batches,
)
from repro.kfac.inverse import (
    batched_damped_cholesky_inverse,
    batched_pair_inverses,
    batched_pi_damping,
    damped_cholesky_inverse,
    pi_damping,
)
from repro.kfac.block_diagonal import BlockDiagonalFactor, block_diag_inversion_flops
from repro.kfac.layer import KFACLayerState
from repro.kfac.kfac import KFAC
from repro.kfac.distributed import (
    DataInversionParallelKFAC,
    CPUOffloadKFAC,
    round_robin_layer_assignment,
)

__all__ = [
    "KroneckerFactor",
    "compute_factor_from_rows",
    "concat_row_batches",
    "batched_factor_from_rows",
    "damped_cholesky_inverse",
    "batched_damped_cholesky_inverse",
    "pi_damping",
    "batched_pi_damping",
    "batched_pair_inverses",
    "BlockDiagonalFactor",
    "block_diag_inversion_flops",
    "KFACLayerState",
    "KFAC",
    "DataInversionParallelKFAC",
    "CPUOffloadKFAC",
    "round_robin_layer_assignment",
]
