"""Kronecker factor construction (the paper's *curvature work*).

Given per-example layer inputs ``a_i`` and output-gradient error signals
``e_i`` for a micro-batch, the factors are

    U_A = 1/sqrt(|B|) [a_1 ... a_|B|],   A = U_A U_A^T
    U_B = 1/sqrt(|B|) [e_1 ... e_|B|],   B = U_B U_B^T

— one matmul per factor, exactly the paper's "2L torch.matmul calls".
For sequence models every token position is treated as an example (the
standard practice for K-FAC on transformers; each row of the flattened
``(batch*seq, features)`` activations is one ``a_i``).

Since training losses are mini-batch *means*, the captured output gradient
rows equal ``(1/N) * dL_i/ds_i``; the empirical-Fisher error signal is the
per-example gradient, so rows are rescaled by ``N`` before forming ``B``.

Micro-batch accumulation is a *single* concatenated matmul: the mini-batch
factor over ``N_micro`` micro-batches equals the factor of the row
concatenation, so there is no per-micro-batch loop and no float64
accumulator round trip.  :func:`batched_factor_from_rows` additionally
forms the factors of a whole group of same-shape layers (all of BERT's
per-block linears, stacked ``(L, N, d)``) with one stacked matmul.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def compute_factor_from_rows(rows: np.ndarray, include_bias: bool = False) -> np.ndarray:
    """Compute ``(1/N) rows^T rows`` — a single Kronecker factor.

    Parameters
    ----------
    rows:
        ``(N, d)`` matrix whose rows are the per-example vectors.
    include_bias:
        Append a constant-1 column first (homogeneous coordinates), which
        folds the layer bias into the ``A`` factor.

    Returns
    -------
    ``(d, d)`` (or ``(d+1, d+1)``) symmetric positive semidefinite matrix.
    """
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"expected 2-D rows, got shape {rows.shape}")
    if include_bias:
        ones = np.ones((rows.shape[0], 1), dtype=rows.dtype)
        rows = np.concatenate([rows, ones], axis=1)
    n = max(rows.shape[0], 1)
    return (rows.T @ rows) / np.float32(n)


def concat_row_batches(row_batches: list[np.ndarray]) -> np.ndarray:
    """Concatenate captured micro-batch rows into one ``(N, d)`` matrix."""
    if not row_batches:
        raise ValueError("no micro-batch rows provided")
    if len(row_batches) == 1:
        return np.asarray(row_batches[0])
    return np.concatenate(row_batches, axis=0)


def batched_factor_from_rows(
    stacked_rows: np.ndarray, include_bias: bool = False, scale: float = 1.0
) -> np.ndarray:
    """Form one Kronecker factor per layer from ``(L, N, d)`` stacked rows.

    The stacked equivalent of :func:`compute_factor_from_rows` for a group
    of ``L`` same-shape layers: one batched matmul produces the ``(L, d,
    d)`` (or ``(L, d+1, d+1)`` with ``include_bias``) factor stack.

    ``scale`` multiplies the result in the same elementwise pass as the
    ``1/N`` normalization — callers that rescale rows (e.g. the B factor's
    ``loss_scale``) fold the quadratic ``scale**2`` in here instead of
    copying every row first.
    """
    x = np.asarray(stacked_rows)
    if x.ndim != 3:
        raise ValueError(f"expected (L, N, d) stacked rows, got shape {x.shape}")
    if include_bias:
        aug = np.empty(x.shape[:2] + (x.shape[2] + 1,), dtype=x.dtype)
        aug[:, :, :-1] = x
        aug[:, :, -1] = 1.0
        x = aug
    n = max(x.shape[1], 1)
    factors = np.matmul(np.transpose(x, (0, 2, 1)), x)
    factors *= np.float32(scale / n)
    return factors


@dataclass
class KroneckerFactor:
    """A running estimate of one Kronecker factor with exponential averaging.

    Parameters
    ----------
    dim:
        Side length of the factor matrix.
    stat_decay:
        EMA coefficient; ``value <- decay * value + (1-decay) * batch_factor``.
        ``0`` replaces the estimate each refresh (the paper's per-refresh
        semantics); KAISA-style implementations use 0.95.
    """

    dim: int
    stat_decay: float = 0.0
    value: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    updates: int = 0

    def __post_init__(self) -> None:
        if self.value is None:
            self.value = np.zeros((self.dim, self.dim), dtype=np.float32)

    def update(self, batch_factor: np.ndarray, copy: bool = True) -> None:
        """Fold one micro-batch factor estimate into the running value.

        ``copy=False`` lets a caller that hands over ownership of
        ``batch_factor`` (the batched group kernels, whose factor stacks
        are freshly allocated) skip the defensive float32 copy.
        """
        if batch_factor.shape != (self.dim, self.dim):
            raise ValueError(
                f"factor shape {batch_factor.shape} != ({self.dim}, {self.dim})"
            )
        if self.updates == 0 or self.stat_decay == 0.0:
            self.value = batch_factor.astype(np.float32, copy=copy)
        else:
            d = self.stat_decay
            self.value = d * self.value + (1.0 - d) * batch_factor.astype(np.float32)
        self.updates += 1

    def update_from_rows(self, rows: np.ndarray, include_bias: bool = False) -> None:
        self.update(compute_factor_from_rows(rows, include_bias=include_bias))

    def accumulate_microbatches(
        self, row_batches: list[np.ndarray], include_bias: bool = False
    ) -> None:
        """Average factor contributions over several micro-batches.

        Pipeline training sees ``N_micro`` micro-batches per step; the
        mini-batch factor is the factor of the row concatenation
        (equivalently, the row-count-weighted mean of per-micro-batch
        factors), formed here as one ``rows.T @ rows`` matmul.
        """
        self.update_from_rows(
            concat_row_batches(row_batches), include_bias=include_bias
        )
