"""Kronecker factor construction (the paper's *curvature work*).

Given per-example layer inputs ``a_i`` and output-gradient error signals
``e_i`` for a micro-batch, the factors are

    U_A = 1/sqrt(|B|) [a_1 ... a_|B|],   A = U_A U_A^T
    U_B = 1/sqrt(|B|) [e_1 ... e_|B|],   B = U_B U_B^T

— one matmul per factor, exactly the paper's "2L torch.matmul calls".
For sequence models every token position is treated as an example (the
standard practice for K-FAC on transformers; each row of the flattened
``(batch*seq, features)`` activations is one ``a_i``).

Since training losses are mini-batch *means*, the captured output gradient
rows equal ``(1/N) * dL_i/ds_i``; the empirical-Fisher error signal is the
per-example gradient, so rows are rescaled by ``N`` before forming ``B``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def compute_factor_from_rows(rows: np.ndarray, include_bias: bool = False) -> np.ndarray:
    """Compute ``(1/N) rows^T rows`` — a single Kronecker factor.

    Parameters
    ----------
    rows:
        ``(N, d)`` matrix whose rows are the per-example vectors.
    include_bias:
        Append a constant-1 column first (homogeneous coordinates), which
        folds the layer bias into the ``A`` factor.

    Returns
    -------
    ``(d, d)`` (or ``(d+1, d+1)``) symmetric positive semidefinite matrix.
    """
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"expected 2-D rows, got shape {rows.shape}")
    if include_bias:
        ones = np.ones((rows.shape[0], 1), dtype=rows.dtype)
        rows = np.concatenate([rows, ones], axis=1)
    n = max(rows.shape[0], 1)
    return (rows.T @ rows) / np.float32(n)


@dataclass
class KroneckerFactor:
    """A running estimate of one Kronecker factor with exponential averaging.

    Parameters
    ----------
    dim:
        Side length of the factor matrix.
    stat_decay:
        EMA coefficient; ``value <- decay * value + (1-decay) * batch_factor``.
        ``0`` replaces the estimate each refresh (the paper's per-refresh
        semantics); KAISA-style implementations use 0.95.
    """

    dim: int
    stat_decay: float = 0.0
    value: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    updates: int = 0

    def __post_init__(self) -> None:
        if self.value is None:
            self.value = np.zeros((self.dim, self.dim), dtype=np.float32)

    def update(self, batch_factor: np.ndarray) -> None:
        """Fold one micro-batch factor estimate into the running value."""
        if batch_factor.shape != (self.dim, self.dim):
            raise ValueError(
                f"factor shape {batch_factor.shape} != ({self.dim}, {self.dim})"
            )
        if self.updates == 0 or self.stat_decay == 0.0:
            self.value = batch_factor.astype(np.float32, copy=True)
        else:
            d = self.stat_decay
            self.value = d * self.value + (1.0 - d) * batch_factor.astype(np.float32)
        self.updates += 1

    def update_from_rows(self, rows: np.ndarray, include_bias: bool = False) -> None:
        self.update(compute_factor_from_rows(rows, include_bias=include_bias))

    def accumulate_microbatches(
        self, row_batches: list[np.ndarray], include_bias: bool = False
    ) -> None:
        """Average factor contributions over several micro-batches.

        Pipeline training sees ``N_micro`` micro-batches per step; the
        mini-batch factor is the concatenation, equivalently the
        row-count-weighted mean of per-micro-batch factors.
        """
        if not row_batches:
            raise ValueError("no micro-batch rows provided")
        total_rows = sum(b.shape[0] for b in row_batches)
        acc = np.zeros((self.dim, self.dim), dtype=np.float64)
        for b in row_batches:
            acc += compute_factor_from_rows(b, include_bias=include_bias) * (
                b.shape[0] / total_rows
            )
        self.update(acc.astype(np.float32))
