"""Block-diagonal Kronecker-factor approximation (paper Appendix A.2).

For Transformers larger than BERT-Large, the d_model x d_model (and
d_ff x d_ff) factors no longer fit GPU memory or invert cheaply.  The
paper's proposed strategy: approximate each curvature matrix as a
K-block-diagonal matrix, so an inversion of size ``K*d`` splits into K
inversions of size ``d`` — and, because all work and bubble times scale by
K while inversion stays flat, "the (curvature+inversion)-bubble ratio will
match the value before scaling by K".

This module implements the numerics (block-diagonal factor accumulation,
inversion and preconditioning) so the strategy is runnable, and
:func:`block_diag_inversion_flops` feeds the performance model that the
A.2 invariance test checks.

Uniform-size blocks (the common ``dim % K == 0`` case) are updated and
inverted as one ``(K, d/K, d/K)`` batch, and inverse blocks are cached
per damping value: :meth:`BlockDiagonalFactor.solve_right`/``solve_left``
factorize once per (factor refresh, damping) instead of on every solve —
the steady-state preconditioning loop between curvature refreshes pays
only the block matmuls.
"""

from __future__ import annotations

import numpy as np

from repro.kfac.inverse import batched_damped_cholesky_inverse, damped_cholesky_inverse


def split_dim(dim: int, num_blocks: int) -> list[tuple[int, int]]:
    """Partition ``dim`` into ``num_blocks`` contiguous (start, end) ranges."""
    if num_blocks <= 0:
        raise ValueError(f"num_blocks must be positive, got {num_blocks}")
    if dim < num_blocks:
        raise ValueError(f"cannot split dim {dim} into {num_blocks} blocks")
    base, rem = divmod(dim, num_blocks)
    ranges = []
    start = 0
    for b in range(num_blocks):
        size = base + (1 if b < rem else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


class BlockDiagonalFactor:
    """A curvature factor stored as K diagonal blocks.

    Equivalent to zeroing all cross-block covariance in the full factor:
    each block b holds ``(1/N) rows[:, b]^T rows[:, b]``.
    """

    def __init__(self, dim: int, num_blocks: int) -> None:
        self.dim = dim
        self.ranges = split_dim(dim, num_blocks)
        self.blocks: list[np.ndarray] = [
            np.zeros((e - s, e - s), dtype=np.float32) for s, e in self.ranges
        ]
        self.updates = 0
        #: Cached damped inverse blocks, keyed by damping; dropped whenever
        #: the factor estimate changes. Bounded so an adaptive damping
        #: schedule (new value every step between factor refreshes) cannot
        #: accumulate one inverse set per distinct damping.
        self._inverse_cache: dict[float, list[np.ndarray]] = {}
        self._inverse_cache_max = 4
        #: Total block Cholesky factorizations performed (regression hook:
        #: repeated solves at one damping must not grow this).
        self.factorizations = 0

    @property
    def num_blocks(self) -> int:
        return len(self.ranges)

    @property
    def _uniform_block(self) -> int | None:
        """Common block size when every block is equally sized, else None."""
        size = self.ranges[0][1] - self.ranges[0][0]
        if self.dim == size * len(self.ranges):
            return size
        return None

    def update_from_rows(self, rows: np.ndarray) -> None:
        """Replace the estimate with this batch's block factors."""
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[1] != self.dim:
            raise ValueError(f"expected (N, {self.dim}) rows, got {rows.shape}")
        n = max(rows.shape[0], 1)
        size = self._uniform_block
        if size is not None:
            # One batched matmul over the (K, N, size) block view.
            view = np.ascontiguousarray(
                rows.reshape(rows.shape[0], len(self.ranges), size).transpose(1, 0, 2)
            )
            stack = np.matmul(np.transpose(view, (0, 2, 1)), view)
            stack /= np.float32(n)
            self.blocks = [b for b in stack.astype(np.float32, copy=False)]
        else:
            for i, (s, e) in enumerate(self.ranges):
                sub = rows[:, s:e]
                self.blocks[i] = (sub.T @ sub / np.float32(n)).astype(np.float32)
        self._inverse_cache.clear()
        self.updates += 1

    def inverse_blocks(self, damping: float) -> list[np.ndarray]:
        """Damped Cholesky inverse of every block (the split inversion work).

        Factorizations are cached per damping value until the next
        :meth:`update_from_rows`; uniform block sizes invert as one batch.
        """
        cached = self._inverse_cache.get(damping)
        if cached is not None:
            return cached
        if self._uniform_block is not None:
            inv = list(
                batched_damped_cholesky_inverse(np.stack(self.blocks), damping)
            )
        else:
            inv = [damped_cholesky_inverse(b, damping) for b in self.blocks]
        self.factorizations += len(self.blocks)
        while len(self._inverse_cache) >= self._inverse_cache_max:
            self._inverse_cache.pop(next(iter(self._inverse_cache)))
        self._inverse_cache[damping] = inv
        return inv

    def dense(self) -> np.ndarray:
        """Materialize the block-diagonal matrix (tests / small dims only)."""
        out = np.zeros((self.dim, self.dim), dtype=np.float32)
        for (s, e), b in zip(self.ranges, self.blocks):
            out[s:e, s:e] = b
        return out

    def solve_right(self, g: np.ndarray, damping: float) -> np.ndarray:
        """Compute ``g @ (F + damping I)^{-1}`` blockwise (A-side solve)."""
        if g.shape[-1] != self.dim:
            raise ValueError(f"gradient last dim {g.shape[-1]} != {self.dim}")
        out = np.empty_like(g)
        for (s, e), inv in zip(self.ranges, self.inverse_blocks(damping)):
            out[..., s:e] = g[..., s:e] @ inv
        return out

    def solve_left(self, g: np.ndarray, damping: float) -> np.ndarray:
        """Compute ``(F + damping I)^{-1} @ g`` blockwise (B-side solve)."""
        if g.shape[0] != self.dim:
            raise ValueError(f"gradient first dim {g.shape[0]} != {self.dim}")
        out = np.empty_like(g)
        for (s, e), inv in zip(self.ranges, self.inverse_blocks(damping)):
            out[s:e] = inv @ g[s:e]
        return out


def block_diag_inversion_flops(dims: list[int], num_blocks: int) -> float:
    """Cholesky factorize+invert FLOPs with K-block-diagonal factors.

    A dimension ``d`` splits into K blocks of ``d/K``:
    ``K * (4/3) (d/K)^3 = (4/3) d^3 / K^2``.
    """
    total = 0.0
    for d in dims:
        sizes = [e - s for s, e in split_dim(d, min(num_blocks, d))]
        total += sum((4.0 / 3.0) * s**3 for s in sizes)
    return total
