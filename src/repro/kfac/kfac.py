"""The K-FAC optimizer: curvature, inversion, and preconditioning orchestration.

Usage mirrors the paper's training flow::

    layers = model.encoder_linear_layers()
    inner  = NVLAMB(model.parameters(), lr=6e-3)
    kfac   = KFAC(layers, inner, damping=0.03,
                  curvature_interval=10, inverse_interval=10)

    loss, _ = model.loss(...)
    loss.backward()
    kfac.step()          # precondition + inner optimizer update

Per §4 of the paper, K-FAC is applied to all fully-connected layers except
the vocabulary classification head (``max_dout`` filters it out when the
head is expressed as a Linear); the inner optimizer updates every
parameter, preconditioned or not.

The three works run as *batched* kernels over layer groups rather than
per-layer Python loops:

* **curvature** — layers sharing ``(d_in, d_out, bias)`` (all of BERT's
  per-block linears, across blocks) are stacked ``(L, N, d)`` and their
  factors formed by one batched matmul each; a lone layer still gets a
  single concatenated ``rows.T @ rows``.
* **inversion** — factors are grouped by dimension and inverted as one
  float32 Cholesky batch per group, with the Martens-Grosse pi split
  computed vectorially from stacked traces.
* **precondition** — ``B^{-1} G A^{-1}`` is applied per group as two
  stacked matmuls over a ``(L, d_out, d_in+1)`` gradient tensor, and the
  natural gradients are written back through views of the result.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.kfac.inverse import batched_pair_inverses
from repro.kfac.layer import KFACLayerState
from repro.nn.linear import Linear
from repro.optim.base import Optimizer


def _fill_stacked_rows(dest: np.ndarray, batches: list[np.ndarray]) -> None:
    """Copy micro-batch rows into one row-span of a preallocated stack."""
    pos = 0
    for b in batches:
        dest[pos:pos + b.shape[0]] = b
        pos += b.shape[0]


class KFAC:
    """K-FAC preconditioner wrapped around an inner first-order optimizer.

    Parameters
    ----------
    named_layers:
        ``(name, Linear)`` pairs to precondition. Capture is enabled on them.
    inner:
        The optimizer that consumes the (preconditioned) gradients.
    damping:
        Overall Tikhonov damping for factor inversion.
    curvature_interval, inverse_interval:
        Refresh periods in optimization steps (paper §2.3.1: e.g. 10 and 100
        in KAISA; PipeFisher refreshes every few steps "for free").
    stat_decay:
        Exponential moving average for factors (0 = replace each refresh).
    max_dout:
        Skip layers whose output dimension exceeds this (the vocab-head rule
        of §4: d_out = 30,522 would make B_L too large to invert).
    use_pi:
        Use Martens-Grosse pi-corrected damping split.
    """

    def __init__(
        self,
        named_layers: Iterable[tuple[str, Linear]],
        inner: Optimizer,
        damping: float = 0.03,
        curvature_interval: int = 1,
        inverse_interval: int = 1,
        stat_decay: float = 0.0,
        max_dout: int | None = None,
        use_pi: bool = True,
    ) -> None:
        if damping <= 0:
            raise ValueError(f"damping must be positive, got {damping}")
        if curvature_interval < 1 or inverse_interval < 1:
            raise ValueError("refresh intervals must be >= 1")
        self.inner = inner
        self.damping = damping
        self.curvature_interval = curvature_interval
        self.inverse_interval = inverse_interval
        self.use_pi = use_pi
        self.step_count = 0

        self.layers: list[tuple[Linear, KFACLayerState]] = []
        skipped: list[str] = []
        for name, layer in named_layers:
            if not isinstance(layer, Linear):
                raise TypeError(f"{name} is not a Linear layer")
            if max_dout is not None and layer.out_features > max_dout:
                skipped.append(name)
                continue
            layer.kfac_capture = True
            state = KFACLayerState(
                name=name,
                din=layer.in_features,
                dout=layer.out_features,
                include_bias=layer.bias is not None,
                stat_decay=stat_decay,
            )
            self.layers.append((layer, state))
        self.skipped_layers = skipped
        if not self.layers:
            raise ValueError("no layers eligible for K-FAC")
        #: Cached (indices, a_inv stack, b_inv stack) precondition groups;
        #: rebuilt lazily after each inverse refresh.
        self._precond_groups: list[tuple[list[int], np.ndarray, np.ndarray]] | None = None
        #: Reusable per-group curvature workspaces (row stacks + factor
        #: output buffers), keyed by group signature. Only kept when
        #: stat_decay == 0: there the previous refresh's factor values are
        #: dead the moment the new batch overwrites the shared buffers,
        #: whereas the EMA path still reads them while blending.
        self._curv_workspaces: dict[tuple, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
        self._reuse_curv_buffers = stat_decay == 0.0

    # -- individual work types (the paper's three K-FAC works) --------------------

    def update_curvature(self) -> None:
        """Curvature work: refresh A_l, B_l from rows captured since last pop.

        Same-shape layers (with equal captured row counts) are stacked and
        their factors formed by one batched matmul per factor side, writing
        into per-group workspaces that persist across refreshes (the factor
        stacks are hundreds of MB at BERT scale; re-faulting fresh pages
        every refresh costs more than the matmuls).
        """
        groups: dict[tuple, list[tuple[KFACLayerState, list, list]]] = {}
        for layer, state in self.layers:
            inputs, grads = layer.kfac_pop()
            if not inputs or not grads:
                raise RuntimeError(
                    f"layer {state.name}: no captured activations/gradients; "
                    "run forward+backward before update_curvature()"
                )
            n_in = sum(b.shape[0] for b in inputs)
            n_g = sum(g.shape[0] for g in grads)
            key = (state.din, state.dout, state.include_bias, n_in, n_g)
            groups.setdefault(key, []).append((state, inputs, grads))

        if self._curv_workspaces:
            # Row counts are part of the key, so ragged batches (epoch-final
            # or variable-length) would otherwise strand dead multi-hundred-MB
            # stacks; keep only the workspaces this refresh actually uses.
            for stale in [k for k in self._curv_workspaces if k not in groups]:
                del self._curv_workspaces[stale]

        for key, members in groups.items():
            din, dout, include_bias, n_in, n_g = key
            if len(members) == 1:
                state, inputs, grads = members[0]
                state.update_curvature(inputs, grads, loss_scale=float(n_g))
                continue
            n_layers = len(members)
            a_dim = din + (1 if include_bias else 0)
            ws = self._curv_workspaces.get(key)
            if ws is None or ws[0].shape[0] != n_layers:
                x = np.empty((n_layers, n_in, a_dim), dtype=np.float32)
                if include_bias:
                    x[:, :, din] = 1.0  # homogeneous column, written once
                g = np.empty((n_layers, n_g, dout), dtype=np.float32)
                a_out = np.empty((n_layers, a_dim, a_dim), dtype=np.float32)
                b_out = np.empty((n_layers, dout, dout), dtype=np.float32)
                ws = (x, g, a_out, b_out)
                if self._reuse_curv_buffers:
                    self._curv_workspaces[key] = ws
            x, g, a_out, b_out = ws
            for j, (_, inputs, grads) in enumerate(members):
                _fill_stacked_rows(x[j, :, :din], inputs)
                _fill_stacked_rows(g[j], grads)
            np.matmul(np.transpose(x, (0, 2, 1)), x, out=a_out)
            a_out *= np.float32(1.0 / max(n_in, 1))
            np.matmul(np.transpose(g, (0, 2, 1)), g, out=b_out)
            # loss_scale = n_g rescales grad rows to per-example error
            # signals; folded into the factor as loss_scale^2 / n_g.
            b_out *= np.float32(float(n_g) ** 2 / max(n_g, 1))
            for j, (state, _, _) in enumerate(members):
                state.a_factor.update(a_out[j], copy=False)
                state.b_factor.update(b_out[j], copy=False)

    def discard_captures(self) -> None:
        """Drop captured rows without updating factors (non-refresh steps).

        Clears the capture buffers in place — the steady-state loop
        allocates no new lists.
        """
        for layer, _ in self.layers:
            layer.kfac_clear()

    def update_inverses(self) -> None:
        """Inversion work: recompute damped inverses for every layer.

        All factors are inverted through :func:`batched_pair_inverses`:
        grouped by dimension, one float32 Cholesky batch per group,
        pi-damping split computed vectorially from stacked traces.
        """
        for _, state in self.layers:
            if state.a_factor.updates == 0 or state.b_factor.updates == 0:
                raise RuntimeError(
                    f"layer {state.name}: inversion before any curvature"
                )
        pairs = [
            (state.a_factor.value, state.b_factor.value)
            for _, state in self.layers
        ]
        inverses = batched_pair_inverses(pairs, self.damping, use_pi=self.use_pi)
        for (_, state), (a_inv, b_inv) in zip(self.layers, inverses):
            state.install_inverses(a_inv, b_inv)
        self._precond_groups = None

    def _build_precond_groups(self) -> list[tuple[list[int], np.ndarray, np.ndarray]]:
        """Stack the inverses of ready same-shape layers, once per refresh."""
        by_shape: dict[tuple[int, int, bool], list[int]] = {}
        for i, (layer, state) in enumerate(self.layers):
            if not state.ready:
                continue  # paper §3.1: fall back to raw gradient until the
                # first inverses exist; afterwards stale inverses are used.
            by_shape.setdefault(
                (state.din, state.dout, state.include_bias), []
            ).append(i)
        return [
            (
                idxs,
                np.stack([self.layers[i][1].a_inv for i in idxs]),
                np.stack([self.layers[i][1].b_inv for i in idxs]),
            )
            for idxs in by_shape.values()
        ]

    def precondition(self) -> None:
        """Precondition work: grad <- B^{-1} G A^{-1} in place, where ready.

        Each same-shape group is preconditioned by two stacked matmuls over
        a ``(L, d_out, d_in+1)`` gradient tensor (bias gradients folded in
        as the homogeneous column); the new weight/bias gradients are views
        into the result.
        """
        if self._precond_groups is None:
            self._precond_groups = self._build_precond_groups()
        for idxs, a_stack, b_stack in self._precond_groups:
            live = [i for i in idxs if self.layers[i][0].weight.grad is not None]
            if not live:
                continue
            if len(live) != len(idxs):
                live_set = set(live)
                sel = [j for j, i in enumerate(idxs) if i in live_set]
                a_stack = a_stack[sel]
                b_stack = b_stack[sel]
            _, state0 = self.layers[live[0]]
            din, dout = state0.din, state0.dout
            include_bias = state0.include_bias
            a_dim = din + (1 if include_bias else 0)
            grads = np.empty((len(live), dout, a_dim), dtype=np.float32)
            for j, i in enumerate(live):
                layer, _ = self.layers[i]
                grads[j, :, :din] = layer.weight.grad
                if include_bias:
                    bias_grad = layer.bias.grad if layer.bias is not None else None
                    grads[j, :, din] = 0.0 if bias_grad is None else bias_grad
            nat = np.matmul(np.matmul(b_stack, grads), a_stack)
            for j, i in enumerate(live):
                layer, _ = self.layers[i]
                layer.weight.grad = nat[j, :, :din]
                if include_bias and layer.bias is not None and layer.bias.grad is not None:
                    layer.bias.grad = nat[j, :, din]

    # -- main entry point ------------------------------------------------------------

    def step(self) -> None:
        """One optimization step: refresh (on schedule), precondition, update."""
        refresh_curv = self.step_count % self.curvature_interval == 0
        refresh_inv = self.step_count % self.inverse_interval == 0
        self.step_count += 1

        if refresh_curv:
            self.update_curvature()
        else:
            self.discard_captures()
        if refresh_inv:
            self.update_inverses()
        self.precondition()
        for _, state in self.layers:
            state.tick_staleness()
        self.inner.step()

    def zero_grad(self) -> None:
        self.inner.zero_grad()

    # -- introspection -----------------------------------------------------------

    @property
    def lr(self) -> float:
        return self.inner.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.inner.lr = value

    def staleness_report(self) -> dict[str, int]:
        """Map layer name -> steps since last inverse refresh."""
        return {state.name: state.inverse_staleness for _, state in self.layers}
