"""The K-FAC optimizer: curvature, inversion, and preconditioning orchestration.

Usage mirrors the paper's training flow::

    layers = model.encoder_linear_layers()
    inner  = NVLAMB(model.parameters(), lr=6e-3)
    kfac   = KFAC(layers, inner, damping=0.03,
                  curvature_interval=10, inverse_interval=10)

    loss, _ = model.loss(...)
    loss.backward()
    kfac.step()          # precondition + inner optimizer update

Per §4 of the paper, K-FAC is applied to all fully-connected layers except
the vocabulary classification head (``max_dout`` filters it out when the
head is expressed as a Linear); the inner optimizer updates every
parameter, preconditioned or not.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.kfac.layer import KFACLayerState
from repro.nn.linear import Linear
from repro.optim.base import Optimizer


class KFAC:
    """K-FAC preconditioner wrapped around an inner first-order optimizer.

    Parameters
    ----------
    named_layers:
        ``(name, Linear)`` pairs to precondition. Capture is enabled on them.
    inner:
        The optimizer that consumes the (preconditioned) gradients.
    damping:
        Overall Tikhonov damping for factor inversion.
    curvature_interval, inverse_interval:
        Refresh periods in optimization steps (paper §2.3.1: e.g. 10 and 100
        in KAISA; PipeFisher refreshes every few steps "for free").
    stat_decay:
        Exponential moving average for factors (0 = replace each refresh).
    max_dout:
        Skip layers whose output dimension exceeds this (the vocab-head rule
        of §4: d_out = 30,522 would make B_L too large to invert).
    use_pi:
        Use Martens-Grosse pi-corrected damping split.
    """

    def __init__(
        self,
        named_layers: Iterable[tuple[str, Linear]],
        inner: Optimizer,
        damping: float = 0.03,
        curvature_interval: int = 1,
        inverse_interval: int = 1,
        stat_decay: float = 0.0,
        max_dout: int | None = None,
        use_pi: bool = True,
    ) -> None:
        if damping <= 0:
            raise ValueError(f"damping must be positive, got {damping}")
        if curvature_interval < 1 or inverse_interval < 1:
            raise ValueError("refresh intervals must be >= 1")
        self.inner = inner
        self.damping = damping
        self.curvature_interval = curvature_interval
        self.inverse_interval = inverse_interval
        self.use_pi = use_pi
        self.step_count = 0

        self.layers: list[tuple[Linear, KFACLayerState]] = []
        skipped: list[str] = []
        for name, layer in named_layers:
            if not isinstance(layer, Linear):
                raise TypeError(f"{name} is not a Linear layer")
            if max_dout is not None and layer.out_features > max_dout:
                skipped.append(name)
                continue
            layer.kfac_capture = True
            state = KFACLayerState(
                name=name,
                din=layer.in_features,
                dout=layer.out_features,
                include_bias=layer.bias is not None,
                stat_decay=stat_decay,
            )
            self.layers.append((layer, state))
        self.skipped_layers = skipped
        if not self.layers:
            raise ValueError("no layers eligible for K-FAC")

    # -- individual work types (the paper's three K-FAC works) --------------------

    def update_curvature(self) -> None:
        """Curvature work: refresh A_l, B_l from rows captured since last pop."""
        for layer, state in self.layers:
            inputs, grads = layer.kfac_pop()
            if not inputs or not grads:
                raise RuntimeError(
                    f"layer {state.name}: no captured activations/gradients; "
                    "run forward+backward before update_curvature()"
                )
            total_rows = sum(g.shape[0] for g in grads)
            state.update_curvature(inputs, grads, loss_scale=float(total_rows))

    def discard_captures(self) -> None:
        """Drop captured rows without updating factors (non-refresh steps)."""
        for layer, _ in self.layers:
            layer.kfac_pop()

    def update_inverses(self) -> None:
        """Inversion work: recompute damped inverses for every layer."""
        for _, state in self.layers:
            state.update_inverses(self.damping, use_pi=self.use_pi)

    def precondition(self) -> None:
        """Precondition work: grad <- B^{-1} G A^{-1} in place, where ready."""
        for layer, state in self.layers:
            if not state.ready:
                continue  # paper §3.1: fall back to raw gradient until the
                # first inverses exist; afterwards stale inverses are used.
            if layer.weight.grad is None:
                continue
            bias_grad = layer.bias.grad if layer.bias is not None else None
            w_nat, b_nat = state.precondition(layer.weight.grad, bias_grad)
            layer.weight.grad = w_nat
            if layer.bias is not None and b_nat is not None:
                layer.bias.grad = b_nat

    # -- main entry point ------------------------------------------------------------

    def step(self) -> None:
        """One optimization step: refresh (on schedule), precondition, update."""
        refresh_curv = self.step_count % self.curvature_interval == 0
        refresh_inv = self.step_count % self.inverse_interval == 0
        self.step_count += 1

        if refresh_curv:
            self.update_curvature()
        else:
            self.discard_captures()
        if refresh_inv:
            self.update_inverses()
        self.precondition()
        for _, state in self.layers:
            state.tick_staleness()
        self.inner.step()

    def zero_grad(self) -> None:
        self.inner.zero_grad()

    # -- introspection -----------------------------------------------------------

    @property
    def lr(self) -> float:
        return self.inner.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.inner.lr = value

    def staleness_report(self) -> dict[str, int]:
        """Map layer name -> steps since last inverse refresh."""
        return {state.name: state.inverse_staleness for _, state in self.layers}
