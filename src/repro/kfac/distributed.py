"""Emulated distributed K-FAC schemes (paper §2.3.2).

These are the prior-art execution strategies PipeFisher is compared
against.  We run them on one process but faithfully reproduce their
*dataflow* — sharding, collective averaging, per-worker layer assignment,
and inverse staleness — so tests can verify numerical equivalence with
serial K-FAC and benchmarks can model their costs.

* :class:`DataInversionParallelKFAC` — Osawa et al. (2019): every worker
  computes curvature for its micro-batch shard, factors are allreduce-
  averaged, and the *inversion* work is split layer-wise across workers
  (Figure 2(ii,b)).
* :class:`CPUOffloadKFAC` — Ba et al. (2017): a stats worker computes
  factors and inverses asynchronously with a multi-step lag, so the
  preconditioner always uses inverses that are ``lag`` steps stale.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.kfac.factors import compute_factor_from_rows
from repro.kfac.inverse import batched_pair_inverses
from repro.kfac.layer import KFACLayerState


def round_robin_layer_assignment(num_layers: int, num_workers: int) -> list[list[int]]:
    """Assign layer indices to workers round-robin (inversion parallelism).

    This scheme "scales to as many distributed accelerators as the number
    of layers in the model" (§2.3.2); extra workers sit idle.
    """
    if num_workers <= 0:
        raise ValueError(f"num_workers must be positive, got {num_workers}")
    assignment: list[list[int]] = [[] for _ in range(num_workers)]
    for layer in range(num_layers):
        assignment[layer % num_workers].append(layer)
    return assignment


class DataInversionParallelKFAC:
    """Data-parallel curvature + layer-parallel inversion, emulated.

    Parameters
    ----------
    states:
        Per-layer :class:`KFACLayerState` (shared with the training loop).
    num_workers:
        Number of emulated accelerators.
    damping, use_pi:
        Inversion hyperparameters.
    """

    def __init__(
        self,
        states: list[KFACLayerState],
        num_workers: int,
        damping: float = 0.03,
        use_pi: bool = True,
    ) -> None:
        self.states = states
        self.num_workers = num_workers
        self.damping = damping
        self.use_pi = use_pi
        self.assignment = round_robin_layer_assignment(len(states), num_workers)
        #: Bytes of dense factor traffic in the last allreduce (cost model).
        self.last_allreduce_bytes = 0

    def curvature_step(
        self,
        worker_inputs: list[list[np.ndarray]],
        worker_grads: list[list[np.ndarray]],
        loss_scales: list[list[float]],
    ) -> None:
        """Each worker contributes shard factors; allreduce-average them.

        ``worker_inputs[w][l]`` is worker ``w``'s captured input rows for
        layer ``l`` (similarly for grads); ``loss_scales[w][l]`` converts
        mean-loss grads to per-example error signals.
        """
        if len(worker_inputs) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} worker shards, got {len(worker_inputs)}"
            )
        bytes_moved = 0
        for l, state in enumerate(self.states):
            a_dim = state.din + (1 if state.include_bias else 0)
            # The allreduce's row-weighted average of per-worker factors is
            # the factor of the concatenated worker rows: sum_w n_w * (1/n_w)
            # rows_w^T rows_w / total = concat^T concat / total. One matmul
            # per factor instead of a per-worker float64 accumulation.
            rows_in = np.concatenate(
                [worker_inputs[w][l] for w in range(self.num_workers)], axis=0
            )
            rows_g = np.concatenate(
                [
                    worker_grads[w][l] * np.float32(loss_scales[w][l])
                    for w in range(self.num_workers)
                ],
                axis=0,
            )
            state.a_factor.update(
                compute_factor_from_rows(rows_in, include_bias=state.include_bias)
            )
            state.b_factor.update(compute_factor_from_rows(rows_g))
            bytes_moved += 4 * (a_dim * a_dim + state.dout * state.dout)
        self.last_allreduce_bytes = bytes_moved * (self.num_workers - 1)

    def inversion_step(self) -> dict[int, list[int]]:
        """Each worker inverts its assigned layers; returns worker -> layers.

        After this (emulated) phase every worker broadcast/allgathers its
        inverses, so all states end up populated.
        """
        done: dict[int, list[int]] = {}
        for w, layers in enumerate(self.assignment):
            done[w] = list(layers)
            for l in layers:
                self.states[l].update_inverses(self.damping, use_pi=self.use_pi)
        return done


class CPUOffloadKFAC:
    """Asynchronous CPU-offloaded curvature/inversion with fixed lag.

    The stats worker receives factor snapshots and returns inverses ``lag``
    submissions later — modeling "the inverse matrices used for
    preconditioning can be stale for many steps (e.g., 100-1000)" (§2.3.2).
    """

    def __init__(
        self,
        states: list[KFACLayerState],
        lag: int,
        damping: float = 0.03,
        use_pi: bool = True,
    ) -> None:
        if lag < 0:
            raise ValueError(f"lag must be non-negative, got {lag}")
        self.states = states
        self.lag = lag
        self.damping = damping
        self.use_pi = use_pi
        self._queue: deque[list[tuple[np.ndarray, np.ndarray]]] = deque()

    def submit_factors(self) -> None:
        """Snapshot current factors and enqueue them for the stats worker."""
        snapshot = [
            (s.a_factor.value.copy(), s.b_factor.value.copy()) for s in self.states
        ]
        self._queue.append(snapshot)

    def poll_inverses(self) -> bool:
        """If a snapshot has aged past ``lag``, invert it and install results.

        Returns True when fresh (well, lag-stale) inverses were installed.
        """
        if len(self._queue) <= self.lag:
            return False
        snapshot = self._queue.popleft()
        inverses = batched_pair_inverses(snapshot, self.damping, use_pi=self.use_pi)
        for state, (a_inv, b_inv) in zip(self.states, inverses):
            state.a_inv = a_inv
            state.b_inv = b_inv
            state.inverse_staleness = self.lag
        return True
