"""Bounded LRU caches with observable statistics.

Every cache in the sweep path (stage-cost models, schedule templates,
per-template timings) is a :class:`BoundedCache`: strictly bounded, LRU
eviction, and hit/miss/eviction counters exposed so tests can assert
cache *behavior* — not just results — and benchmarks can prove their
baselines ran cold (``clear()`` resets both entries and counters).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        n = self.lookups
        return self.hits / n if n else 0.0


class BoundedCache:
    """An LRU-bounded mapping with hit/miss/eviction accounting.

    Unlike ``functools.lru_cache`` this is introspectable (``stats()``),
    clearable mid-run, and usable with keys computed separately from the
    cached call — the sweep engine keys templates by canonicalized
    structural tuples, not by the raw call arguments.  Memo sites go
    through :meth:`get_or_create`, which treats a stored ``None`` as a
    hit (a hand-rolled ``get``-then-``put`` with a ``None`` sentinel
    would recompute it forever).
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or miss and refreshing LRU order."""
        if key in self._data:
            self._hits += 1
            self._data.move_to_end(key)
            return self._data[key]
        self._misses += 1
        return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting the least-recently-used entry if full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self._evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """``get`` with a fallback ``factory()`` whose result is stored."""
        sentinel = _MISSING
        value = self.get(key, sentinel)
        if value is sentinel:
            value = factory()
            self.put(key, value)
        return value

    def values(self):
        """Current values, LRU-oldest first (no hit/miss accounting)."""
        return list(self._data.values())

    def items(self):
        """Current (key, value) pairs, LRU-oldest first (no accounting)."""
        return list(self._data.items())

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._data.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._data),
            maxsize=self.maxsize,
        )


_MISSING = object()
