"""Re-timing a compiled schedule template for one sweep point.

Two paths, both bit-identical to the reference per-point pipeline:

* :func:`simulate_compiled` — the event-driven executor of
  :func:`repro.pipeline.executor.simulate_tasks`, ported onto a
  :class:`~repro.sweep.template.CompiledGraph`'s integer arrays.  Every
  float operation and tie-break is replicated in the reference's order
  (ready heaps compare precomputed ``order_key``s that encode the
  reference's ``(priority, tid)`` order), so times match bit for bit.
  It optionally re-times with an explicit per-task duration array and a
  :class:`DeviceFaults` failure/restart plan — the stochastic replicate
  path (:mod:`repro.stochastic`), which perturbs durations per device
  and injects restart-from-checkpoint downtime without rebuilding the
  graph.
* :func:`rescale_timing` — when a new point's durations are exactly a
  power-of-two multiple of an already-timed point's, the simulated clock
  can be scaled instead of re-run: multiplying by 2**k only shifts float
  exponents, so every sum, max, and comparison in a fresh simulation
  would produce exactly the scaled values.  The one hazard is the
  executor's absolute tie epsilon (1e-12): a time gap near it could
  change sides under scaling, so a timing is only rescaled when its
  observed gap spectrum stays clear of the epsilon band on both sides
  (:func:`tie_margins`).  Non-power-of-two or margin-violating scalings
  fall back to re-execution — exactness is never traded for speed.

The bubble filler (:func:`fill_compiled`) always re-runs: its feasibility
thresholds (``min_chunk``, ``min_bubble``) are absolute seconds, so its
*decisions* legitimately change under uniform cost scaling even though
the pipeline timeline merely stretches.  The port keeps the reference
``BubbleFiller``'s candidate *visit order* (ready/future sets walked in
exactly the heap-pop order) but holds the sets as sorted lists, which
turns the reference's pop/stash/re-push churn at every bubble boundary
into plain iteration.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass
from math import frexp, isfinite

from repro.sweep.template import CompiledGraph, ScheduleTemplate

#: Same tie epsilon as ``repro.pipeline.executor``.
_TIME_EPS = 1e-12
#: Same placement epsilon as ``repro.pipefisher.assignment``.
_EPS = 1e-9


@dataclass(frozen=True)
class DeviceFaults:
    """A per-device failure/restart plan the executor replays at dispatch.

    ``failure_times[d]`` is an ascending tuple of absolute instants at
    which device ``d`` fails.  A failure striking a running task loses the
    work since the last checkpoint (every ``checkpoint_every`` seconds of
    task progress when positive; only completed-task boundaries when 0 —
    the whole in-flight attempt is redone), takes ``restart_delay``
    seconds of downtime, and re-executes the lost work on the same device.
    A failure striking an idle device only delays its next start past the
    downtime window.  Stochastic models sample these traces per replicate
    (:mod:`repro.stochastic.perturb`); the executor itself stays
    deterministic given the trace.
    """

    failure_times: tuple
    restart_delay: float = 0.0
    checkpoint_every: float = 0.0


@dataclass
class CompiledSim:
    """Timing of one compiled graph (the ``SimulationResult`` essentials).

    ``end`` holds the *completion-processing* times (the executor may
    batch completions within its 1e-12 tie epsilon, overwriting a task's
    end with the batch instant — dependency propagation and the makespan
    use these, exactly like the reference's ``end_times``).  ``ev_end``
    holds each task's *dispatch-computed* ``start + duration``, which is
    what the reference records on its timeline events; bubbles, colored
    time, and K-FAC trigger readiness all read event ends.

    ``restarts`` holds one ``(device, task, fail_time, resume_time,
    lost_work)`` tuple per fault the simulation replayed (empty for
    deterministic runs) — the "extra tasks" a failure injects, exposed so
    reports can render downtime and re-executed work.
    """

    start: list[float]
    end: list[float]
    ev_end: list[float]
    #: Task indices in dispatch order — the timeline's insertion order.
    ev_order: list[int]
    makespan: float
    restarts: tuple = ()


def simulate_compiled(
    g: CompiledGraph,
    durs: tuple | None,
    task_durs: list | None = None,
    faults: DeviceFaults | None = None,
) -> CompiledSim:
    """Run the executor's event loop over compiled arrays.

    ``durs[g.dur_code[i]]`` is task i's duration; ``task_durs``, when
    given, overrides the table with an explicit per-task duration array
    (the stochastic perturbation path — per-device jitter makes durations
    task-dependent).  With neither override nor faults the result is
    bit-identical to the reference ``simulate_tasks``: same heap orders,
    same simultaneous-completion draining, same in-flight
    admission/parking, same float additions (``task_durs[i]`` is
    precomputed as exactly ``durs[dur_code[i]]``).

    ``faults`` injects the failure/restart semantics of
    :class:`DeviceFaults`: each dispatch folds the device's pending
    failures into the task's execution window — restart downtime plus
    re-execution of un-checkpointed work — before the completion event is
    scheduled.  Control tasks (``device is None``) never fail.
    """
    n = g.n
    device = g.device
    if task_durs is None:
        task_durs = [durs[c] for c in g.dur_code]
    tdur = task_durs
    order_key = g.order_key
    dependents = g.dependents
    ikey = g.inflight_key
    ilim = g.inflight_limit
    rkey = g.release_key
    heappush = heapq.heappush
    heappop = heapq.heappop

    missing = list(g.ndeps)
    start = [0.0] * n
    end = [0.0] * n
    ev_end = [0.0] * n
    device_free = [0.0] * g.num_devices
    ready: list[list] = [[] for _ in range(g.num_devices)]
    parked: list[list] = [[] for _ in range(g.n_inflight_keys)]
    inflight = [0] * g.n_inflight_keys
    ev_order: list[int] = []
    events: list[tuple[float, int, int]] = []
    seq = 0
    remaining = n

    if faults is not None:
        fail_times = faults.failure_times
        fail_cursor = [0] * g.num_devices
        restart_delay = faults.restart_delay
        checkpoint_every = faults.checkpoint_every
        restarts: list[tuple] = []

        def run_with_faults(dev: int, now: float, dur: float,
                            idx: int) -> tuple[float, float]:
            """Fold device ``dev``'s pending failures into one execution.

            Failures that struck while the device sat idle push the start
            past their downtime windows (no work lost); failures landing
            inside the attempt lose the progress since the last
            checkpoint, cost ``restart_delay`` of downtime, and resume
            with the surviving remainder.  Returns (start, end).
            """
            times = fail_times[dev]
            n_times = len(times)
            cur = fail_cursor[dev]
            st = now
            while cur < n_times and times[cur] <= st:
                f = times[cur]
                cur += 1
                resume = f + restart_delay
                if resume > st:
                    restarts.append((dev, idx, f, resume, 0.0))
                    st = resume
            attempt = st
            left = dur
            while cur < n_times and times[cur] < attempt + left:
                f = times[cur]
                cur += 1
                if f <= attempt:
                    # The device is already down (failure during restart
                    # downtime): the outage extends, no new work is lost.
                    resume = f + restart_delay
                    if resume > attempt:
                        restarts.append((dev, idx, f, resume, 0.0))
                        attempt = resume
                    continue
                done = f - attempt
                preserved = 0.0
                if checkpoint_every > 0.0:
                    last_ckpt = (f // checkpoint_every) * checkpoint_every
                    if last_ckpt > attempt:
                        preserved = min(done, last_ckpt - attempt)
                left -= preserved
                resume = f + restart_delay
                restarts.append((dev, idx, f, resume, done - preserved))
                attempt = resume
            fail_cursor[dev] = cur
            return st, attempt + left

    def promote(idx: int, now: float, dirty: set) -> None:
        nonlocal remaining
        stack = [idx]
        while stack:
            cur = stack.pop()
            if device[cur] is None:
                start[cur] = now
                end[cur] = now
                ev_end[cur] = now
                remaining -= 1
                for dep in dependents[cur]:
                    missing[dep] -= 1
                    if missing[dep] == 0:
                        stack.append(dep)
            else:
                heappush(ready[device[cur]], (order_key[cur], cur))
                dirty.add(device[cur])

    def finish(idx: int, t_end: float, dirty: set) -> None:
        nonlocal remaining
        end[idx] = t_end
        remaining -= 1
        dirty.add(device[idx])
        rel = rkey[idx]
        if rel >= 0:
            inflight[rel] -= 1
            if parked[rel]:
                for entry in parked[rel]:
                    heappush(ready[device[entry[1]]], entry)
                    dirty.add(device[entry[1]])
                parked[rel].clear()
        for dep in dependents[idx]:
            missing[dep] -= 1
            if missing[dep] == 0:
                promote(dep, t_end, dirty)

    def dispatch(dev: int, now: float) -> None:
        nonlocal seq
        if device_free[dev] > now + _TIME_EPS:
            return
        heap = ready[dev]
        while heap:
            entry = heap[0]
            idx = entry[1]
            key = ikey[idx]
            if key >= 0 and inflight[key] >= ilim[idx]:
                heappop(heap)
                parked[key].append(entry)
                continue
            heappop(heap)
            if key >= 0:
                inflight[key] += 1
            if faults is None:
                st = now
                t_end = now + tdur[idx]
            else:
                st, t_end = run_with_faults(dev, now, tdur[idx], idx)
            device_free[dev] = t_end
            start[idx] = st
            ev_end[idx] = t_end
            ev_order.append(idx)
            heappush(events, (t_end, seq, idx))
            seq += 1
            return

    dirty: set[int] = set()
    for i in g.zero_dep:
        promote(i, 0.0, dirty)
    for dev in sorted(dirty):
        dispatch(dev, 0.0)

    while events:
        now = events[0][0]
        dirty = set()
        while events and events[0][0] <= now + _TIME_EPS:
            _, _, idx = heappop(events)
            finish(idx, now, dirty)
        for dev in sorted(dirty):
            dispatch(dev, now)

    if remaining > 0:
        raise RuntimeError(
            f"deadlock: {remaining} tasks cannot run; check deps and "
            "in-flight limits"
        )
    return CompiledSim(start=start, end=end, ev_end=ev_end,
                       ev_order=ev_order, makespan=max(end),
                       restarts=tuple(restarts) if faults is not None else ())


# -- exact rescaling ------------------------------------------------------------


def exact_pow2_ratio(new: tuple, old: tuple) -> float | None:
    """The single power-of-two ``alpha`` with ``new == alpha * old``, or None.

    Zeros must pair with zeros; every nonzero pair must give the *same*
    float ratio; the ratio must be a power of two (so ``alpha * x`` is
    exact for every finite ``x``); and every product must reproduce the
    new value bit-for-bit.
    """
    alpha: float | None = None
    for a, b in zip(new, old):
        if b == 0.0 or a == 0.0:
            if a != b:
                return None
            continue
        r = a / b
        if alpha is None:
            m, _ = frexp(r)
            if m != 0.5 or not isfinite(r):
                return None
            alpha = r
        elif r != alpha:
            return None
    if alpha is None:
        return 1.0
    for a, b in zip(new, old):
        if b != 0.0 and b * alpha != a:
            return None
    return alpha


def tie_margins(sims: list[CompiledSim]) -> tuple[float, float]:
    """(max tie-cluster diameter, min inter-cluster gap) of a timing.

    Times within ``_TIME_EPS`` of each other form a tie cluster (the
    executor treats them as one instant).  A rescale by ``alpha`` keeps
    every comparison's outcome iff scaled diameters stay <= eps and
    scaled cluster gaps stay > eps; the caller checks both against the
    returned margins.
    """
    times = sorted({t for sim in sims for t in sim.start}
                   | {t for sim in sims for t in sim.end}
                   | {t for sim in sims for t in sim.ev_end})
    max_diam = 0.0
    min_gap = float("inf")
    cluster_start = None
    for prev, cur in zip(times, times[1:]):
        gap = cur - prev
        if gap <= _TIME_EPS:
            if cluster_start is None:
                cluster_start = prev
            max_diam = max(max_diam, cur - cluster_start)
        else:
            cluster_start = None
            min_gap = min(min_gap, gap)
    return max_diam, min_gap


def rescale_safe(alpha: float, max_diam: float, min_gap: float) -> bool:
    """Would every ``<= t + eps`` comparison survive scaling by ``alpha``?

    Three conjuncts: the reference's tie clusters were genuine ties
    (diameter within the epsilon *before* scaling — a wider chained
    cluster was only partially batched, and down-scaling it under the
    epsilon would batch it fully in a fresh run), they stay ties after
    scaling, and distinct instants stay distinct after scaling.
    """
    return (max_diam <= _TIME_EPS
            and max_diam * alpha <= _TIME_EPS
            and min_gap * alpha > _TIME_EPS)


def rescale_timing(sim: CompiledSim, alpha: float) -> CompiledSim:
    """Scale a timing by an exact power of two (validated by the caller)."""
    if alpha == 1.0:
        return sim
    return CompiledSim(
        start=[t * alpha for t in sim.start],
        end=[t * alpha for t in sim.end],
        ev_end=[t * alpha for t in sim.ev_end],
        ev_order=sim.ev_order,
        makespan=sim.makespan * alpha,
    )


# -- bubble filling over compiled queues ----------------------------------------


def device_bubbles(
    g: CompiledGraph,
    sim: CompiledSim,
    device: int,
    span: float,
    min_bubble: float,
) -> list[tuple[float, float]]:
    """Idle intervals on one device, exactly as ``bubble_intervals`` sees them.

    Replicates ``Timeline.idle_intervals`` over the occupying kinds: sort
    by (start, end), merge with the 1e-12 touch tolerance, complement
    within (0, span), drop bubbles <= ``min_bubble``.
    """
    start = sim.start
    ev_end = sim.ev_end
    evs = sorted((start[i], ev_end[i]) for i in g.occupying_by_device[device])
    merged: list[tuple[float, float]] = []
    for s, e in evs:
        if merged and s <= merged[-1][1] + 1e-12:
            if e > merged[-1][1]:
                merged[-1] = (merged[-1][0], e)
        else:
            merged.append((s, e))
    idle: list[tuple[float, float]] = []
    cursor = 0.0
    for b0, b1 in merged:
        if b0 >= span:
            break
        b0c = max(b0, 0.0)
        b1c = min(b1, span)
        if b0c > cursor:
            idle.append((cursor, b0c))
        cursor = max(cursor, b1c)
    if cursor < span:
        idle.append((cursor, span))
    return [(a, b) for a, b in idle if b - a > min_bubble]


def _feasible(remaining: float, room: float, min_chunk: float) -> bool:
    """Port of ``BubbleFiller._feasible`` (same epsilons, same order)."""
    if room < remaining - _EPS:
        return not (room < min_chunk - _EPS or remaining - room < min_chunk)
    return room > _EPS


@dataclass
class CompiledFill:
    """Placements for every device of a template at one timing."""

    #: device -> per-item segment lists (inventory order).
    segments: dict[int, list[list[tuple[float, float]]]]
    #: device -> steps its queue needed.
    device_steps: dict[int, int]
    span: float


def fill_compiled(
    template: ScheduleTemplate,
    sim: CompiledSim,
    qdurs: tuple,
    max_steps: int = 64,
    min_bubble: float = 1e-5,
    min_chunk: float = 2e-3,
) -> CompiledFill:
    """Drain every device's compiled queue into the timing's bubbles.

    A faithful port of ``BubbleFiller._fill_device`` (steady-state mode,
    the runner's configuration).  The "now" candidates are kept sorted by
    ``(-ready, pos)`` and the "future" candidates by ``(ready, pos)`` —
    the exact orders the reference's heaps pop in — so walking the lists
    visits candidates in the reference order without its stash/re-push
    cycles, and placements come out bit-identical (each item's placed
    total is the same left-fold of segment lengths the reference's
    ``placed_duration`` property computes).
    """
    g = template.pf_graph
    span = sim.makespan
    end_of = sim.ev_end
    seg_out: dict[int, list[list[tuple[float, float]]]] = {}
    steps_out: dict[int, int] = {}

    for dev in sorted(template.queues.devices):
        dq = template.queues.devices[dev]
        n = len(dq.items)
        segments: list[list[tuple[float, float]]] = [[] for _ in range(n)]
        seg_out[dev] = segments
        if n == 0:
            steps_out[dev] = 0
            continue
        bubbles0 = device_bubbles(g, sim, dev, span, min_bubble)
        if not bubbles0:
            raise RuntimeError(
                f"device {dev} has no bubbles to fill (span {span:.4f}s)"
            )
        codes = dq.codes
        dur = [qdurs[c] for c in codes]
        placed = [0.0] * n
        dependents = dq.dependents
        dep_count = [0] * n
        dep_max_end = [0.0] * n
        #: Sorted candidate sets replacing the reference's heaps.
        future: list[tuple[float, int]] = []       # (ready, pos) ascending
        now: list[tuple[float, int]] = []          # (-ready, pos) ascending

        trig = dq.trig
        items = dq.items
        for pos in range(n):
            ti = trig[pos]
            if ti >= 0:
                future.append((end_of[ti] - span, pos))
            else:
                dep_count[pos] = len(items[pos].dep_positions)
        future.sort()

        remaining = n
        last_placed_duration = -1.0
        steps_used = 0
        for step in range(max_steps):
            offset = step * span
            for bub0, bub1 in bubbles0:
                b0 = bub0 + offset
                b1 = bub1 + offset
                t = b0
                while True:
                    if b1 - t <= _EPS:
                        break
                    if future and future[0][0] <= t:
                        k = 1
                        flen = len(future)
                        while k < flen and future[k][0] <= t:
                            k += 1
                        for r, pos in future[:k]:
                            insort(now, (-r, pos))
                        del future[:k]
                    win_at = -1
                    win_pos = -1
                    win_ready = 0.0
                    from_future = False
                    st = t
                    room_now = b1 - t
                    for j, (negr, pos) in enumerate(now):
                        if _feasible(dur[pos] - placed[pos], room_now,
                                     min_chunk):
                            win_at, win_pos, win_ready = j, pos, -negr
                            break
                    if win_pos < 0:
                        for j, (r, pos) in enumerate(future):
                            if r >= b1:
                                break
                            if _feasible(dur[pos] - placed[pos], b1 - r,
                                         min_chunk):
                                win_at, win_pos, win_ready = j, pos, r
                                st = r
                                from_future = True
                                break
                    if win_pos < 0:
                        break
                    rem = dur[win_pos] - placed[win_pos]
                    room = b1 - st
                    piece = rem if rem < room else room
                    e = st + piece
                    segments[win_pos].append((st, e))
                    placed[win_pos] = placed[win_pos] + (e - st)
                    t = e
                    if dur[win_pos] - placed[win_pos] <= 1e-12:
                        remaining -= 1
                        if from_future:
                            del future[win_at]
                        else:
                            del now[win_at]
                        item_end = e
                        deps = dependents.get(win_pos)
                        if deps:
                            for dpos in deps:
                                dep_count[dpos] -= 1
                                if item_end > dep_max_end[dpos]:
                                    dep_max_end[dpos] = item_end
                                if dep_count[dpos] == 0:
                                    insort(future, (dep_max_end[dpos], dpos))
                    elif from_future:
                        # Partial placement from the future set: the
                        # cursor has passed its readiness, so it re-enters
                        # as a "now" candidate (reference re-push).
                        del future[win_at]
                        insort(now, (-win_ready, win_pos))
                if remaining == 0:
                    steps_used = step + 1
                    break
            if remaining == 0:
                steps_used = step + 1
                break
            total = 0.0
            for p in placed:
                total += p
            if total <= last_placed_duration + _EPS:
                stuck = [items[pos].iid for pos in range(n)
                         if dur[pos] - placed[pos] > 1e-12]
                raise RuntimeError(
                    f"device {dev}: no placement progress in step {step}; "
                    f"stuck items: {stuck[:5]}"
                )
            last_placed_duration = total
        else:
            raise RuntimeError(
                f"device {dev}: {remaining} K-FAC items still unassigned "
                f"after {max_steps} steps; bubbles too small for the work"
            )
        steps_out[dev] = steps_used

    return CompiledFill(segments=seg_out, device_steps=steps_out, span=span)
