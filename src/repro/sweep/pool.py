"""Process-pool evaluation of sweep points sharing cached templates.

The parent engine resolves structure (templates, cost models, duration
tables) and workers do only the numeric half: each receives one pickled
*stripped* template — timings cache and native handles dropped, so the
payload is plain lists — plus a slice of duration tables, evaluates
them (native core when the worker can compile/load it, reference python
otherwise), and returns plain timing payloads.  The parent rebuilds
reference-typed evaluations from the payloads; since both paths compute
python floats through the same operations, pooled results are
bit-identical to in-process ones.

Used by ``SweepEngine.run_many(jobs=N)`` and, one level up, by
``CampaignRunner`` (shard-per-worker) and ``stochastic.monte_carlo``
(seed-block-per-worker).
"""

from __future__ import annotations

import dataclasses
from time import perf_counter

from repro.sweep.retime import CompiledFill, CompiledSim


def picklable_template(template):
    """A copy of ``template`` safe to send to a worker process.

    The timings cache stays home (workers get explicit tables; shipping
    cached evaluations would be dead weight) and the graphs are
    shallow-copied so cached ctypes marshalling handles — process-local
    pointers — don't ride along.
    """
    return dataclasses.replace(
        template,
        base_graph=dataclasses.replace(template.base_graph),
        pf_graph=dataclasses.replace(template.pf_graph),
        timings=None,
    )


def _sim_payload(sim: CompiledSim) -> tuple:
    return (sim.start, sim.end, sim.ev_end, sim.ev_order, sim.makespan)


def _sim_from_payload(p: tuple) -> CompiledSim:
    return CompiledSim(start=p[0], end=p[1], ev_end=p[2], ev_order=p[3],
                       makespan=p[4])


def evaluation_payload(ev) -> dict:
    """One evaluation as plain picklable data (segments materialized)."""
    return {
        "base": _sim_payload(ev.base),
        "pf": _sim_payload(ev.pf),
        "segments": ev.fill.segments,
        "device_steps": dict(ev.fill.device_steps),
        "span": ev.fill.span,
        "base_util": ev.base_util,
        "pf_util": ev.pf_util,
        "refresh": ev.refresh,
        "native": getattr(ev, "_native", False),
    }


def evaluation_from_payload(payload: dict):
    """Rebuild a reference-typed evaluation from a worker payload.

    The ``"native"`` flag rides back onto the evaluation: the parent
    engine's ``native_evals`` counter and phase attribution read it, and
    a rebuilt evaluation that is re-serialized (``evaluation_payload``
    round-trip) must not silently demote native rows to reference ones.
    """
    from repro.sweep.engine import _Evaluation
    ev = _Evaluation(
        base=_sim_from_payload(payload["base"]),
        pf=_sim_from_payload(payload["pf"]),
        fill=CompiledFill(segments=payload["segments"],
                          device_steps=payload["device_steps"],
                          span=payload["span"]),
        base_util=payload["base_util"],
        pf_util=payload["pf_util"],
        refresh=payload["refresh"],
    )
    ev._native = bool(payload.get("native", False))
    return ev


def eval_worker(template, dur_keys: list) -> tuple:
    """Evaluate ``dur_keys`` tables of ``template`` in a worker process.

    Returns ``(payloads, retime_seconds, fill_seconds)`` with payloads
    in input order.  Must stay module-level: the pool pickles it by
    reference.
    """
    from repro.sweep import batch as _batch
    from repro.sweep.engine import SweepEngine, _Evaluation
    from repro.sweep.retime import fill_compiled, simulate_compiled

    payloads = [None] * len(dur_keys)
    retime_s = 0.0
    fill_s = 0.0
    todo = list(range(len(dur_keys)))

    if _batch.batching_supported(template):
        t_begin = perf_counter()
        gb_b = _batch.simulate_graph_batch(
            template.base_graph, [dur_keys[i][0] for i in todo])
        gb_p = _batch.simulate_graph_batch(
            template.pf_graph, [dur_keys[i][1] for i in todo])
        base_util = (_batch.windowed_utilization_batch(gb_b)
                     if gb_b is not None else None)
        retime_s += perf_counter() - t_begin
        t_begin = perf_counter()
        fb = (_batch.fill_graph_batch(
            template, gb_p, [dur_keys[i][2] for i in todo])
            if gb_p is not None else None)
        if gb_b is not None and gb_p is not None and fb is not None:
            remaining = []
            for row, i in enumerate(todo):
                if not (gb_b.ok(row) and gb_p.ok(row) and fb.ok(row)):
                    remaining.append(i)
                    continue
                pf = gb_p.sim(row)
                ev = _Evaluation(
                    base=gb_b.sim(row), pf=pf,
                    fill=fb.fill(row, pf.makespan),
                    base_util=float(base_util[row]),
                    pf_util=float(fb.pf_util[row]),
                    refresh=max(int(fb.refresh[row]), 1),
                )
                ev._native = True
                payloads[i] = evaluation_payload(ev)
            todo = remaining
        fill_s += perf_counter() - t_begin

    for i in todo:
        base_durs, pf_durs, qdurs = dur_keys[i]
        t_begin = perf_counter()
        base = simulate_compiled(template.base_graph, base_durs)
        pf = simulate_compiled(template.pf_graph, pf_durs)
        bu = SweepEngine._windowed_utilization(template.base_graph, base)
        retime_s += perf_counter() - t_begin
        t_begin = perf_counter()
        fill = fill_compiled(template, pf, qdurs)
        refresh = max(fill.device_steps.values(), default=1)
        refresh = max(refresh, 1)
        ev = _Evaluation(
            base=base, pf=pf, fill=fill, base_util=bu,
            pf_util=SweepEngine._pf_utilization(template, pf, fill, qdurs,
                                                refresh),
            refresh=refresh,
        )
        payloads[i] = evaluation_payload(ev)
        fill_s += perf_counter() - t_begin

    return payloads, retime_s, fill_s
