"""Delta re-timing: replay only the suffix a duration change can reach.

``simulate_recording`` is :func:`~repro.sweep.retime.simulate_compiled`
(fault-free flavor) instrumented with two cheap observations per run:
the event loop's *round* structure (one round per distinct completion
time, exactly the reference's outer ``while events`` iteration), and the
first round at which each duration code is dispatched.  Durations enter
the simulation **only** at dispatch (``t_end = now + tdur[idx]``), so if
two tables differ in a set of codes none of which dispatches before
round ``r0``, every round before ``r0`` is bit-identical between them —
:func:`resume` restores the latest recorded checkpoint at or before
``r0`` and replays just the reachable suffix with the new table.  Two
degenerate cases fall out for free: a change confined to codes the graph
never dispatches (or an identical table) reuses the recorded sim
outright, and a change to a round-0 code returns None (no prefix to
share — the caller runs the reference).

Checkpoints are kept with a doubling stride (at most
:data:`MAX_CHECKPOINTS` live snapshots regardless of round count), so
recording costs O(n) memory and a few list copies, and a resume replays
at most ~half the schedule plus one stride.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.sweep.retime import _TIME_EPS, CompiledSim

#: Live snapshots kept per recording; past this the stride doubles.
MAX_CHECKPOINTS = 24


@dataclass
class _Checkpoint:
    """Full event-loop state at the top of one round."""

    round_no: int
    n_ev: int                  #: len(ev_order) so far
    missing: list
    start: list
    end: list
    ev_end: list
    device_free: list
    ready: list                #: per-device heap snapshots
    parked: list               #: per-key parked-entry snapshots
    inflight: list
    events: list
    seq: int
    remaining: int


@dataclass
class DeltaTrace:
    """One recorded execution, resumable under changed duration tables."""

    graph: object
    durs: tuple
    sim: CompiledSim
    first_round: dict          #: dur code -> first round it dispatched in
    checkpoints: list          #: _Checkpoint, ascending round_no


def simulate_recording(g, durs: tuple) -> tuple[CompiledSim, DeltaTrace]:
    """Run the reference event loop, recording resume points.

    Bit-identical to ``simulate_compiled(g, durs)`` — the loop body is
    the same operations in the same order; the instrumentation only
    copies state *between* rounds.
    """
    n = g.n
    device = g.device
    tdur = [durs[c] for c in g.dur_code]
    dur_code = g.dur_code
    order_key = g.order_key
    dependents = g.dependents
    ikey = g.inflight_key
    ilim = g.inflight_limit
    rkey = g.release_key
    heappush = heapq.heappush
    heappop = heapq.heappop

    missing = list(g.ndeps)
    start = [0.0] * n
    end = [0.0] * n
    ev_end = [0.0] * n
    device_free = [0.0] * g.num_devices
    ready: list[list] = [[] for _ in range(g.num_devices)]
    parked: list[list] = [[] for _ in range(g.n_inflight_keys)]
    inflight = [0] * g.n_inflight_keys
    ev_order: list[int] = []
    events: list[tuple[float, int, int]] = []
    seq = 0
    remaining = n

    round_no = 0
    first_round: dict[int, int] = {}
    checkpoints: list[_Checkpoint] = []
    stride = 1

    def promote(idx: int, now: float, dirty: set) -> None:
        nonlocal remaining
        stack = [idx]
        while stack:
            cur = stack.pop()
            if device[cur] is None:
                start[cur] = now
                end[cur] = now
                ev_end[cur] = now
                remaining -= 1
                for dep in dependents[cur]:
                    missing[dep] -= 1
                    if missing[dep] == 0:
                        stack.append(dep)
            else:
                heappush(ready[device[cur]], (order_key[cur], cur))
                dirty.add(device[cur])

    def finish(idx: int, t_end: float, dirty: set) -> None:
        nonlocal remaining
        end[idx] = t_end
        remaining -= 1
        dirty.add(device[idx])
        rel = rkey[idx]
        if rel >= 0:
            inflight[rel] -= 1
            if parked[rel]:
                for entry in parked[rel]:
                    heappush(ready[device[entry[1]]], entry)
                    dirty.add(device[entry[1]])
                parked[rel].clear()
        for dep in dependents[idx]:
            missing[dep] -= 1
            if missing[dep] == 0:
                promote(dep, t_end, dirty)

    def dispatch(dev: int, now: float) -> None:
        nonlocal seq
        if device_free[dev] > now + _TIME_EPS:
            return
        heap = ready[dev]
        while heap:
            entry = heap[0]
            idx = entry[1]
            key = ikey[idx]
            if key >= 0 and inflight[key] >= ilim[idx]:
                heappop(heap)
                parked[key].append(entry)
                continue
            heappop(heap)
            if key >= 0:
                inflight[key] += 1
            code = dur_code[idx]
            if code not in first_round:
                first_round[code] = round_no
            t_end = now + tdur[idx]
            device_free[dev] = t_end
            start[idx] = now
            ev_end[idx] = t_end
            ev_order.append(idx)
            heappush(events, (t_end, seq, idx))
            seq += 1
            return

    def snapshot() -> _Checkpoint:
        return _Checkpoint(
            round_no=round_no,
            n_ev=len(ev_order),
            missing=list(missing),
            start=list(start),
            end=list(end),
            ev_end=list(ev_end),
            device_free=list(device_free),
            ready=[list(h) for h in ready],
            parked=[list(p) for p in parked],
            inflight=list(inflight),
            events=list(events),
            seq=seq,
            remaining=remaining,
        )

    dirty: set[int] = set()
    for i in g.zero_dep:
        promote(i, 0.0, dirty)
    for dev in sorted(dirty):
        dispatch(dev, 0.0)

    while events:
        round_no += 1
        if (round_no - 1) % stride == 0:
            checkpoints.append(snapshot())
            if len(checkpoints) > MAX_CHECKPOINTS:
                del checkpoints[1::2]
                stride *= 2
        now = events[0][0]
        dirty = set()
        while events and events[0][0] <= now + _TIME_EPS:
            _, _, idx = heappop(events)
            finish(idx, now, dirty)
        for dev in sorted(dirty):
            dispatch(dev, now)

    if remaining > 0:
        raise RuntimeError(
            f"deadlock: {remaining} tasks cannot run; check deps and "
            "in-flight limits"
        )
    sim = CompiledSim(start=start, end=end, ev_end=ev_end,
                      ev_order=ev_order, makespan=max(end))
    trace = DeltaTrace(graph=g, durs=tuple(durs), sim=sim,
                       first_round=first_round, checkpoints=checkpoints)
    return sim, trace


def resume(trace: DeltaTrace, durs: tuple) -> CompiledSim | None:
    """Re-time ``trace.graph`` under ``durs`` from the shared prefix.

    Returns a sim bit-identical to ``simulate_compiled(graph, durs)``,
    or None when no recorded prefix is reusable (the change reaches
    round 0, or the table length differs) — callers fall back to a full
    execution.
    """
    ref = trace.durs
    if len(durs) != len(ref):
        return None
    changed = [c for c in range(len(ref)) if durs[c] != ref[c]]
    live = [trace.first_round[c] for c in changed
            if c in trace.first_round]
    if not live:
        # The recorded execution never dispatches a changed code: every
        # operation would replay identically, so the sim *is* the result.
        return trace.sim
    r0 = min(live)
    ck = None
    for cand in trace.checkpoints:
        if cand.round_no <= r0:
            ck = cand
        else:
            break
    if ck is None:
        return None

    g = trace.graph
    device = g.device
    tdur = [durs[c] for c in g.dur_code]
    order_key = g.order_key
    dependents = g.dependents
    ikey = g.inflight_key
    ilim = g.inflight_limit
    rkey = g.release_key
    heappush = heapq.heappush
    heappop = heapq.heappop

    missing = list(ck.missing)
    start = list(ck.start)
    end = list(ck.end)
    ev_end = list(ck.ev_end)
    device_free = list(ck.device_free)
    ready = [list(h) for h in ck.ready]
    parked = [list(p) for p in ck.parked]
    inflight = list(ck.inflight)
    ev_order = list(trace.sim.ev_order[:ck.n_ev])
    events = list(ck.events)
    seq = ck.seq
    remaining = ck.remaining

    def promote(idx: int, now: float, dirty: set) -> None:
        nonlocal remaining
        stack = [idx]
        while stack:
            cur = stack.pop()
            if device[cur] is None:
                start[cur] = now
                end[cur] = now
                ev_end[cur] = now
                remaining -= 1
                for dep in dependents[cur]:
                    missing[dep] -= 1
                    if missing[dep] == 0:
                        stack.append(dep)
            else:
                heappush(ready[device[cur]], (order_key[cur], cur))
                dirty.add(device[cur])

    def finish(idx: int, t_end: float, dirty: set) -> None:
        nonlocal remaining
        end[idx] = t_end
        remaining -= 1
        dirty.add(device[idx])
        rel = rkey[idx]
        if rel >= 0:
            inflight[rel] -= 1
            if parked[rel]:
                for entry in parked[rel]:
                    heappush(ready[device[entry[1]]], entry)
                    dirty.add(device[entry[1]])
                parked[rel].clear()
        for dep in dependents[idx]:
            missing[dep] -= 1
            if missing[dep] == 0:
                promote(dep, t_end, dirty)

    def dispatch(dev: int, now: float) -> None:
        nonlocal seq
        if device_free[dev] > now + _TIME_EPS:
            return
        heap = ready[dev]
        while heap:
            entry = heap[0]
            idx = entry[1]
            key = ikey[idx]
            if key >= 0 and inflight[key] >= ilim[idx]:
                heappop(heap)
                parked[key].append(entry)
                continue
            heappop(heap)
            if key >= 0:
                inflight[key] += 1
            t_end = now + tdur[idx]
            device_free[dev] = t_end
            start[idx] = now
            ev_end[idx] = t_end
            ev_order.append(idx)
            heappush(events, (t_end, seq, idx))
            seq += 1
            return

    while events:
        now = events[0][0]
        dirty: set[int] = set()
        while events and events[0][0] <= now + _TIME_EPS:
            _, _, idx = heappop(events)
            finish(idx, now, dirty)
        for dev in sorted(dirty):
            dispatch(dev, now)

    if remaining > 0:
        raise RuntimeError(
            f"deadlock: {remaining} tasks cannot run; check deps and "
            "in-flight limits"
        )
    return CompiledSim(start=start, end=end, ev_end=ev_end,
                       ev_order=ev_order, makespan=max(end))
