"""Sweep engine: evaluate many what-if configurations fast.

The experiment drivers (fig5/6/9-16 grids, table 2, the interleaved
sweep, the capacity planner) and user-defined searches all funnel
through one :class:`SweepEngine`: structural configurations are
canonicalized into schedule templates built once, points sharing a
template are re-timed (exact rescale or compiled re-execution), and
stage-cost models are shared between the simulator and the analytic
§3.3 paths — with every result bit-identical to the per-point
:class:`~repro.pipefisher.runner.PipeFisherRun` reference.

Quick use::

    from repro.sweep import SweepEngine
    from repro.pipefisher.runner import PipeFisherRun

    engine = SweepEngine()
    reports = engine.run_many(
        PipeFisherRun(schedule="chimera", arch=arch, hardware=hw,
                      b_micro=b, depth=16, n_micro=16)
        for b in (4, 8, 16, 32)
    )
    engine.stats()  # cache hit/miss + rescale/re-execution counters

Engine/template names are provided lazily (PEP 562): the pipeline
runner imports :mod:`repro.sweep.cache` while the engine imports the
runner, so eagerly importing the engine here would be circular.
"""

from repro.sweep.cache import BoundedCache, CacheStats

__all__ = [
    "BoundedCache",
    "CacheStats",
    "ScheduleTemplate",
    "SweepEngine",
    "TemplateKey",
    "default_engine",
]

_LAZY = {
    "SweepEngine": "repro.sweep.engine",
    "default_engine": "repro.sweep.engine",
    "ScheduleTemplate": "repro.sweep.template",
    "TemplateKey": "repro.sweep.template",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
