"""Schedule templates: the structure of a sweep point, compiled once.

A sweep over (architecture, hardware, micro-batch size) re-uses the same
*structural* configuration — ``(schedule, depth, n_micro, virtual_chunks,
layers_per_stage, ...)`` — at every point; only the work durations change.
:class:`ScheduleTemplate` canonicalizes that structure into a
:class:`TemplateKey`, builds the baseline and PipeFisher task graphs and
the K-FAC work-queue inventory exactly once, and compiles them into
integer-indexed arrays (dependency adjacency, priority/tid ranks,
in-flight key ids, duration codes).  Re-timing a point is then a small
duration table plus :func:`simulate_compiled` / ``fill_compiled`` in
:mod:`repro.sweep.retime` — no string formatting, no dict building, no
dataclass graph construction.

Compiled runs are **bit-identical** to :func:`repro.pipeline.executor.simulate_tasks`
and :class:`repro.pipefisher.assignment.BubbleFiller` on the same
configuration: every float operation (additions along dependency chains,
tie-epsilon comparisons, min/max clips) is replicated in the same order,
and every tie-break (priority tuples, then task-id order, here as
precomputed ranks) is preserved.  ``tests/sweep/test_engine_equivalence.py``
asserts this across every schedule family.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pipefisher.workqueue import build_device_queues
from repro.pipeline.bubbles import OCCUPYING_KINDS
from repro.pipeline.schedules import PipelineConfig, make_schedule
from repro.pipeline.spec import get_spec
from repro.pipeline.work import Task, WorkKind

#: Duration codes: every task's duration is one of these per-point values.
DUR_FWD = 0       #: forward of one stage
DUR_BWD = 1       #: backward (+ recompute forward when enabled)
DUR_SYNC_GRAD = 2
DUR_PRECOND = 3
DUR_OVERHEAD = 4
DUR_ZERO = 5      #: barriers / control tasks
DUR_BWD_INPUT = 6   #: zero-bubble input-grad (+ recompute forward)
DUR_BWD_WEIGHT = 7  #: zero-bubble weight-grad (bubble filler material)
N_DUR_CODES = 8

#: K-FAC work-item duration codes.
QDUR_CURV_A = 0
QDUR_CURV_B = 1
QDUR_INV = 2      #: one factor's inversion (``block.t_inv / 2``)
QDUR_SYNC_CURV = 3

_KIND_TO_DUR = {
    WorkKind.FORWARD: DUR_FWD,
    WorkKind.BACKWARD: DUR_BWD,
    WorkKind.BACKWARD_INPUT: DUR_BWD_INPUT,
    WorkKind.BACKWARD_WEIGHT: DUR_BWD_WEIGHT,
    WorkKind.SYNC_GRAD: DUR_SYNC_GRAD,
    WorkKind.PRECONDITION: DUR_PRECOND,
    WorkKind.OVERHEAD: DUR_OVERHEAD,
    WorkKind.BARRIER: DUR_ZERO,
}

_QKIND_TO_DUR = {
    ("curvature", "A"): QDUR_CURV_A,
    ("curvature", "B"): QDUR_CURV_B,
    ("inversion", "A"): QDUR_INV,
    ("inversion", "B"): QDUR_INV,
    ("sync_curv", "-"): QDUR_SYNC_CURV,
}


@dataclass(frozen=True)
class TemplateKey:
    """Canonical structural identity of a sweep point.

    Everything that shapes the task graph or the K-FAC work inventory —
    but not the durations — is in the key; two points with equal keys
    share one compiled template.  ``virtual_chunks`` is canonicalized to
    0 for the schedules that ignore it, so e.g. gpipe points with
    different (unused) chunk settings still share a template.
    """

    schedule: str
    depth: int
    n_micro: int
    virtual_chunks: int
    layers_per_stage: int
    dp: int
    world_multiplier: int
    recompute: bool
    inversion_parallel: bool
    has_sync_grad: bool
    has_sync_curv: bool


def structural_group_size(schedule: str, dp: int) -> int:
    """Size of one device's allreduce group, before ``world_multiplier``.

    The registry's structural mirror of ``ScheduleBuilder.dp_group``:
    Chimera's pipeline pair doubles the replication; every other schedule
    groups the ``dp`` replicas.
    """
    return get_spec(schedule).group_size(dp)


def stages_per_device(schedule: str, virtual_chunks: int) -> int:
    """Stages hosted per device (constant within a schedule family)."""
    return get_spec(schedule).stages_per_device(virtual_chunks)


@dataclass
class CompiledGraph:
    """One task graph lowered to integer-indexed arrays.

    ``meta``/``label`` keep references to the template build's dicts and
    strings; the engine copies each ``meta`` when it materializes report
    timelines, so consumers can annotate events without corrupting the
    cached template or sibling reports.

    ``order_key`` collapses the executor's ``(priority, tid)`` ready-heap
    ordering into one comparable per task: the lexicographic priority
    tuple packed with the tid's sort rank when priorities are uniform
    non-negative int pairs (the builders' shape), else a
    ``(priority, rank)`` tuple.  Either way, comparing two tasks'
    ``order_key`` gives exactly the reference's tie-break order.
    """

    num_devices: int
    n: int
    device: list[int | None]
    kind: list[str]
    label: list[str]
    meta: list[dict]
    order_key: list               #: packed (priority, tid-rank) heap key
    dur_code: list[int]
    ndeps: list[int]
    dependents: list[list[int]]
    inflight_key: list[int]       #: admission key id, -1 if none
    inflight_limit: list[int]
    release_key: list[int]        #: released key id, -1 if none
    n_inflight_keys: int
    zero_dep: list[int]           #: tasks with no deps, in build order
    #: Occupying (bubble-relevant) task indices per device, build order.
    occupying_by_device: list[list[int]]
    #: (kind, stage, micro_batch, pipeline, replica) -> task index, for
    #: resolving K-FAC forward/backward triggers without timeline scans.
    trigger_idx: dict[tuple, int]


def _pack_order_keys(tasks: list[Task], rank: list[int]) -> list:
    """One comparable per task, ordered exactly like ``(priority, tid)``.

    The empty priority ``()`` (the builders' "run first" marker, e.g. the
    optimizer-step control task) sorts before every non-empty tuple, so
    it packs to the bare rank and every int-pair priority shifts up one
    slot — keeping the whole graph on int keys, which is what lets the
    native batch core (``repro.sweep.native``) accept it.
    """
    n = len(tasks)
    prios = [t.priority for t in tasks]
    if all(
        p == () or (
            len(p) == 2 and type(p[0]) is int and type(p[1]) is int
            and p[0] >= 0 and p[1] >= 0)
        for p in prios
    ):
        m1 = max((p[1] for p in prios if p), default=0) + 1
        return [rank[i] if not p else (p[0] * m1 + p[1] + 1) * n + rank[i]
                for i, p in enumerate(prios)]
    return [(p, rank[i]) for i, p in enumerate(prios)]


def compile_graph(tasks: list[Task], num_devices: int) -> CompiledGraph:
    """Lower a built task graph to arrays (validates like the executor)."""
    by_id: dict[str, int] = {}
    for i, t in enumerate(tasks):
        if t.tid in by_id:
            raise ValueError(f"duplicate task id {t.tid}")
        by_id[t.tid] = i
    n = len(tasks)
    ndeps = [0] * n
    dependents: list[list[int]] = [[] for _ in range(n)]
    for i, t in enumerate(tasks):
        ndeps[i] = len(t.deps)
        for d in t.deps:
            if d not in by_id:
                raise RuntimeError(f"task {t.tid} depends on unknown task {d}")
            dependents[by_id[d]].append(i)

    order = sorted(range(n), key=lambda i: tasks[i].tid)
    rank = [0] * n
    for r, i in enumerate(order):
        rank[i] = r

    key_ids: dict = {}

    def key_id(key) -> int:
        if key not in key_ids:
            key_ids[key] = len(key_ids)
        return key_ids[key]

    inflight_key = [-1] * n
    inflight_limit = [0] * n
    release_key = [-1] * n
    trigger_idx: dict[tuple, int] = {}
    occupying_by_device: list[list[int]] = [[] for _ in range(num_devices)]
    for i, t in enumerate(tasks):
        key = t.meta.get("inflight_key")
        if key is not None:
            inflight_key[i] = key_id(key)
            inflight_limit[i] = t.meta["inflight_limit"]
        rel = t.meta.get("inflight_release")
        if rel is not None:
            release_key[i] = key_id(rel)
        if t.device is not None and t.kind.value in OCCUPYING_KINDS:
            occupying_by_device[t.device].append(i)
        if t.kind in (WorkKind.FORWARD, WorkKind.BACKWARD,
                      WorkKind.BACKWARD_INPUT):
            # A split backward's input-grad end *is* the "backward"
            # trigger event (mirrors ``BubbleFiller``'s canonicalization).
            trig_kind = ("backward" if t.kind is WorkKind.BACKWARD_INPUT
                         else t.kind.value)
            trigger_idx[(
                trig_kind,
                t.meta["stage"],
                t.meta["micro_batch"],
                t.meta.get("pipeline"),
                t.meta.get("replica", 0),
            )] = i

    return CompiledGraph(
        num_devices=num_devices,
        n=n,
        device=[t.device for t in tasks],
        kind=[t.kind.value for t in tasks],
        label=[t.label for t in tasks],
        meta=[t.meta for t in tasks],
        order_key=_pack_order_keys(tasks, rank),
        dur_code=[_KIND_TO_DUR[t.kind] for t in tasks],
        ndeps=ndeps,
        dependents=dependents,
        inflight_key=inflight_key,
        inflight_limit=inflight_limit,
        release_key=release_key,
        n_inflight_keys=len(key_ids),
        zero_dep=[i for i in range(n) if ndeps[i] == 0],
        occupying_by_device=occupying_by_device,
        trigger_idx=trigger_idx,
    )


@dataclass
class CompiledItem:
    """Structural identity of one K-FAC work item (durations come later)."""

    iid: str
    device: int
    kind: str
    factor: str
    stage: int
    block: int
    micro_batch: int | None
    pipeline: str | None
    dur_code: int
    trigger: tuple                #: original trigger tuple (for reports)
    #: For forward/backward triggers: index of the pf-graph task whose end
    #: is the readiness event.  For "items" triggers: -1.
    trigger_task: int
    #: For "items" triggers: positions (within the device queue) of the
    #: items that must be assigned first.
    dep_positions: tuple[int, ...]


@dataclass
class DeviceQueue:
    """One device's K-FAC inventory: item structs + hot-loop arrays."""

    #: Items in inventory order (the reference ``build_device_queues``
    #: emission order) — used when a report materializes its assignment.
    items: list[CompiledItem]
    #: Parallel arrays the compiled filler reads (no attribute access).
    codes: list[int]              #: duration code per item
    trig: list[int]               #: pf-graph trigger task idx, -1 if deps
    dependents: dict[int, list[int]]


@dataclass
class CompiledQueues:
    """Per-device K-FAC work inventories, structurally compiled."""

    devices: dict[int, DeviceQueue]


@dataclass
class ScheduleTemplate:
    """Everything cost-independent about one structural configuration."""

    key: TemplateKey
    num_devices: int
    n_stages: int                 #: stages hosted per device (constant)
    world: int                    #: allreduce world per device (constant)
    base_graph: CompiledGraph
    pf_graph: CompiledGraph
    queues: CompiledQueues
    #: Cached per-duration-table timings/evaluations (engine-managed).
    timings: object = field(default=None, repr=False)


def build_template(
    key: TemplateKey,
    base_cfg: PipelineConfig,
    pf_cfg: PipelineConfig,
    sync_curv_seconds: float,
) -> ScheduleTemplate:
    """Build + compile both task graphs and the K-FAC inventory once.

    The configs carry this first point's costs, but only structure is
    kept: durations are replaced per point by the engine's re-timing.
    """
    base_builder = make_schedule(key.schedule, base_cfg)
    pf_builder = make_schedule(key.schedule, pf_cfg)
    base_graph = compile_graph(base_builder.build(steps=1), base_builder.num_devices)
    pf_graph = compile_graph(pf_builder.build(steps=1), pf_builder.num_devices)

    ref_queues = build_device_queues(
        pf_builder,
        pf_cfg.costs,
        inversion_parallel=key.inversion_parallel,
        sync_curv_seconds=sync_curv_seconds,
    )
    devices: dict[int, DeviceQueue] = {}
    dp = pf_cfg.dp
    for dev in sorted(ref_queues):
        q = ref_queues[dev]
        pos_of = {item.iid: pos for pos, item in enumerate(q.items)}
        dev_items: list[CompiledItem] = []
        dev_deps: dict[int, list[int]] = {}
        for pos, item in enumerate(q.items):
            if item.trigger[0] == "items":
                dep_positions = tuple(pos_of[d] for d in item.trigger[1])
                trigger_task = -1
                for dpos in dep_positions:
                    dev_deps.setdefault(dpos, []).append(pos)
            else:
                ev, s, m, pipe = item.trigger
                dep_positions = ()
                trigger_task = pf_graph.trigger_idx[(ev, s, m, pipe, dev % dp)]
            dev_items.append(
                CompiledItem(
                    iid=item.iid,
                    device=item.device,
                    kind=item.kind,
                    factor=item.factor,
                    stage=item.stage,
                    block=item.block,
                    micro_batch=item.micro_batch,
                    pipeline=item.pipeline,
                    dur_code=_QKIND_TO_DUR[(item.kind, item.factor)],
                    trigger=item.trigger,
                    trigger_task=trigger_task,
                    dep_positions=dep_positions,
                )
            )
        devices[dev] = DeviceQueue(
            items=dev_items,
            codes=[it.dur_code for it in dev_items],
            trig=[it.trigger_task for it in dev_items],
            dependents=dev_deps,
        )

    return ScheduleTemplate(
        key=key,
        num_devices=pf_builder.num_devices,
        n_stages=len(pf_builder.stages_of_device(0)),
        world=pf_builder.allreduce_world(0),
        base_graph=base_graph,
        pf_graph=pf_graph,
        queues=CompiledQueues(devices=devices),
    )
