"""Batched re-timing: evaluate many duration tables of one template at once.

A compiled template is already integer arrays, so a batch of points
sharing it can be advanced as one ``(n_points, n_tasks)`` pass through
the native core (:mod:`repro.sweep.native`): one C call runs the
event-driven executor for every point, one fills every point's bubbles,
one folds every utilization.  Each function degrades per point — a row
the core cannot handle (deadlock, filler failure, structural feature it
doesn't model) comes back ``None`` and the caller re-runs that point
through the pure-python reference path, which also raises the
reference's exact errors.

Everything returned is reference-typed: :class:`~repro.sweep.retime.CompiledSim`
rows hold python floats (``ndarray.tolist`` preserves bits), and
:class:`NativeFill` quacks like :class:`~repro.sweep.retime.CompiledFill`
with the per-item segment lists materialized lazily — sweeps that only
read scalar report fields never pay for segment-tuple construction.
"""

from __future__ import annotations

from dataclasses import dataclass

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a de-facto hard dep
    np = None

from repro.sweep import native
from repro.sweep.retime import CompiledSim, fill_compiled, simulate_compiled


def batching_supported(template) -> bool:
    """Can this template's points be evaluated through the native core?"""
    return (
        np is not None
        and native.available()
        and native.graph_arrays(template.base_graph) is not None
        and native.graph_arrays(template.pf_graph) is not None
        and native.queue_arrays(template) is not None
    )


def _row_sim(ga, start, end, ev_end, ev_order, mk, i) -> CompiledSim:
    """One batch row as a reference-typed sim (python floats, exact)."""
    return CompiledSim(
        start=start[i].tolist(),
        end=end[i].tolist(),
        ev_end=ev_end[i].tolist(),
        ev_order=ev_order[i, :ga.n_disp].tolist(),
        makespan=float(mk[i]),
    )


@dataclass
class GraphBatch:
    """Native sim output for one graph over a point batch."""

    ga: object                 #: the graph's GraphArrays
    start: object              #: (P, n) float64
    end: object
    ev_end: object
    ev_order: object           #: (P, n_disp) int32
    makespan: object           #: (P,) float64
    status: object             #: (P,) int32; 0 == valid row

    def ok(self, i: int) -> bool:
        return self.status[i] == 0

    def sim(self, i: int) -> CompiledSim:
        return _row_sim(self.ga, self.start, self.end, self.ev_end,
                        self.ev_order, self.makespan, i)


class NativeRestarts:
    """The restart rows of one fault batch row, materialized lazily.

    Quacks like the reference's ``restarts`` tuple of
    ``(device, task, fail, resume, lost)`` rows in append order —
    ``len()`` is free, iteration/indexing/equality build the python
    tuples on first touch.  ``tolist`` preserves float bits and turns
    int32 back into python ints, so rows compare ``==`` to the
    reference's exactly.
    """

    __slots__ = ("_dev", "_task", "_fail", "_resume", "_lost", "_rows")

    def __init__(self, dev, task, fail, resume, lost) -> None:
        self._dev = dev
        self._task = task
        self._fail = fail
        self._resume = resume
        self._lost = lost
        self._rows = None

    @property
    def materialized(self) -> bool:
        return self._rows is not None

    def _materialize(self) -> tuple:
        if self._rows is None:
            self._rows = tuple(zip(self._dev.tolist(), self._task.tolist(),
                                   self._fail.tolist(),
                                   self._resume.tolist(),
                                   self._lost.tolist()))
        return self._rows

    def __len__(self) -> int:
        return self._dev.shape[0]

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, i):
        return self._materialize()[i]

    def __eq__(self, other):
        if isinstance(other, NativeRestarts):
            other = other._materialize()
        return self._materialize() == tuple(other)

    def __repr__(self) -> str:
        return f"NativeRestarts({self._materialize()!r})"


@dataclass
class FaultBatch(GraphBatch):
    """Native fault-replay output: a GraphBatch plus restart rows."""

    rest_dev: object = None    #: (P, cap) int32
    rest_task: object = None   #: (P, cap) int32
    rest_fail: object = None   #: (P, cap) float64
    rest_resume: object = None
    rest_lost: object = None
    rest_count: object = None  #: (P,) int32 valid rows per point

    def restarts(self, i: int) -> NativeRestarts:
        m = int(self.rest_count[i])
        return NativeRestarts(self.rest_dev[i, :m], self.rest_task[i, :m],
                              self.rest_fail[i, :m], self.rest_resume[i, :m],
                              self.rest_lost[i, :m])

    def sim(self, i: int) -> CompiledSim:
        s = super().sim(i)
        return CompiledSim(start=s.start, end=s.end, ev_end=s.ev_end,
                           ev_order=s.ev_order, makespan=s.makespan,
                           restarts=self.restarts(i))

    def restart_stats(self, i: int):
        """``(n_restarts, downtime, lost_work)`` for row ``i``.

        The float folds run as python left-folds in append order —
        exactly the reference's ``_downtime``/``_lost_work`` sums — so
        they are bit-identical to folding the scalar path's tuples.
        """
        m = int(self.rest_count[i])
        down = 0.0
        for fail, resume in zip(self.rest_fail[i, :m].tolist(),
                                self.rest_resume[i, :m].tolist()):
            down += resume - fail
        lost = 0.0
        for v in self.rest_lost[i, :m].tolist():
            lost += v
        return m, down, lost


def pack_faults(faults, num_devices: int):
    """Pack per-row :class:`~repro.sweep.retime.DeviceFaults` into the
    native CSR layout: ``(ft_off, ft_times, delay, ckpt)``.

    ``faults`` is one entry per batch row, ``None`` meaning no faults
    (an empty table — the native fault path is bit-identical to the
    no-fault path on such rows).  Returns None when a row's failure
    table does not have exactly ``num_devices`` device lists.
    """
    P = len(faults)
    D = num_devices
    off = np.zeros(P * D + 1, np.int64)
    times: list = []
    delay = np.zeros(P, np.float64)
    ckpt = np.zeros(P, np.float64)
    k = 0
    for p, f in enumerate(faults):
        ft = None
        if f is not None:
            if len(f.failure_times) != D:
                return None
            delay[p] = f.restart_delay
            ckpt[p] = f.checkpoint_every
            ft = f.failure_times
        for d in range(D):
            ts = ft[d] if ft is not None else ()
            times.extend(ts)
            k += len(ts)
            off[p * D + d + 1] = k
    ft_times = np.asarray(times, np.float64) if times \
        else np.zeros(0, np.float64)
    return off, ft_times, delay, ckpt


def simulate_graph_batch(graph, durs_list=None, task_durs=None, faults=None
                         ) -> GraphBatch | None:
    """One native pass of the executor over a batch of duration tables.

    ``durs_list`` is a sequence of per-code duration tuples (expanded to
    per-task durations exactly like the reference's
    ``[durs[c] for c in dur_code]``); ``task_durs`` is an explicit
    ``(P, n)`` per-task duration matrix (the Monte Carlo perturbation
    path).  ``faults``, when given, is one
    :class:`~repro.sweep.retime.DeviceFaults` or ``None`` per row and
    routes the batch through the fault-replay core — the result is then
    a :class:`FaultBatch` carrying restart rows.  Returns None when the
    native core cannot run this graph — callers loop
    :func:`~repro.sweep.retime.simulate_compiled` instead.
    """
    if np is None or not native.available():
        return None
    ga = native.graph_arrays(graph)
    if ga is None:
        return None
    if task_durs is None:
        table = np.asarray(durs_list, np.float64)
        task_durs = np.ascontiguousarray(table[:, ga.dur_code])
    if faults is not None:
        packed = pack_faults(faults, ga.num_devices)
        if packed is None:
            return None
        ft_off, ft_times, delay, ckpt = packed
        start, end, ev_end, ev_order, mk, rest, status = \
            native.sim_fault_batch(ga, task_durs, ft_off, ft_times,
                                   delay, ckpt)
    else:
        start, end, ev_end, ev_order, mk, status = native.sim_batch(
            ga, task_durs)
        rest = None
    bad = status != 0
    if bad.any():
        # Failed rows carry partial data; neutralize them so whole-batch
        # folds (utilization, metrics) stay in bounds.  Their values are
        # never consumed — callers fall back per failed row.
        ev_order[bad] = 0
        start[bad] = 0.0
        ev_end[bad] = 0.0
        mk[bad] = 1.0
        if rest is not None:
            rest[5][bad] = 0
    if rest is None:
        return GraphBatch(ga=ga, start=start, end=end, ev_end=ev_end,
                          ev_order=ev_order, makespan=mk, status=status)
    return FaultBatch(ga=ga, start=start, end=end, ev_end=ev_end,
                      ev_order=ev_order, makespan=mk, status=status,
                      rest_dev=rest[0], rest_task=rest[1],
                      rest_fail=rest[2], rest_resume=rest[3],
                      rest_lost=rest[4], rest_count=rest[5])


def simulate_compiled_batch(graph, durs_list=None, task_durs=None
                            ) -> list[CompiledSim]:
    """Batch variant of :func:`~repro.sweep.retime.simulate_compiled`.

    Bit-identical to calling the reference per point (the property tests
    fuzz this); rows the native core rejects — and the whole batch when
    the core is unavailable — run through the reference itself.
    """
    if durs_list is not None:
        P = len(durs_list)
    else:
        P = len(task_durs)

    def reference(i: int) -> CompiledSim:
        td = None
        if task_durs is not None:
            row = task_durs[i]
            td = row if isinstance(row, list) else list(row)
        return simulate_compiled(
            graph, durs_list[i] if durs_list is not None else None,
            task_durs=td)

    gb = simulate_graph_batch(graph, durs_list, _as_matrix(task_durs))
    if gb is None:
        return [reference(i) for i in range(P)]
    return [gb.sim(i) if gb.ok(i) else reference(i) for i in range(P)]


def _as_matrix(task_durs):
    if task_durs is None or np is None:
        return task_durs
    return np.ascontiguousarray(np.asarray(task_durs, np.float64))


class NativeFill:
    """A :class:`~repro.sweep.retime.CompiledFill` built from the native
    segment stream, with the per-item tuple lists materialized lazily."""

    __slots__ = ("device_steps", "span", "_qa", "_seg_item", "_seg_s",
                 "_seg_e", "_segments")

    def __init__(self, qa, device_steps: dict, span: float,
                 seg_item, seg_s, seg_e) -> None:
        self.device_steps = device_steps
        self.span = span
        self._qa = qa
        self._seg_item = seg_item
        self._seg_s = seg_s
        self._seg_e = seg_e
        self._segments = None

    @property
    def segments(self) -> dict:
        if self._segments is None:
            q_off = self._qa.q_off_list
            segs = {dev: [[] for _ in range(q_off[dev + 1] - q_off[dev])]
                    for dev in range(len(q_off) - 1)}
            dev = 0
            for gi, s, e in zip(self._seg_item.tolist(),
                                self._seg_s.tolist(),
                                self._seg_e.tolist()):
                while q_off[dev + 1] <= gi or q_off[dev] > gi:
                    dev = dev + 1 if q_off[dev + 1] <= gi else 0
                segs[dev][gi - q_off[dev]].append((s, e))
            self._segments = segs
        return self._segments


@dataclass
class FillBatch:
    """Native fill output over a point batch."""

    qa: object
    device_steps: object       #: (P, D) int32
    refresh: object            #: (P,) int32
    seg_item: object
    seg_s: object
    seg_e: object
    seg_count: object
    pf_util: object            #: (P,) float64, the reference fold
    status: object

    def ok(self, i: int) -> bool:
        return self.status[i] == 0

    def fill(self, i: int, span: float) -> NativeFill:
        m = int(self.seg_count[i])
        steps = self.device_steps[i]
        return NativeFill(
            self.qa,
            {dev: int(steps[dev]) for dev in range(steps.shape[0])},
            span,
            self.seg_item[i, :m].copy(),
            self.seg_s[i, :m].copy(),
            self.seg_e[i, :m].copy(),
        )


def fill_graph_batch(template, pf_batch: GraphBatch, qdurs_list
                     ) -> FillBatch | None:
    """One native pass of the bubble filler over a simulated batch."""
    if np is None or not native.available():
        return None
    qa = native.queue_arrays(template)
    if qa is None:
        return None
    qd = np.ascontiguousarray(np.asarray(qdurs_list, np.float64))
    (dev_steps, refresh, seg_item, seg_s, seg_e, seg_count, pf_util,
     status) = native.fill_batch(
        pf_batch.ga, qa, pf_batch.start, pf_batch.ev_end,
        pf_batch.makespan, qd, pf_batch.ev_order)
    return FillBatch(qa=qa, device_steps=dev_steps, refresh=refresh,
                     seg_item=seg_item, seg_s=seg_s, seg_e=seg_e,
                     seg_count=seg_count, pf_util=pf_util, status=status)


def fill_compiled_batch(template, sims, qdurs_list) -> list:
    """Batch variant of :func:`~repro.sweep.retime.fill_compiled`.

    ``sims`` may be a :class:`GraphBatch` (zero-copy native path) or a
    list of :class:`CompiledSim`.  Failing rows re-run the reference,
    which raises the reference's errors.
    """
    if isinstance(sims, GraphBatch):
        fb = fill_graph_batch(template, sims, qdurs_list)
        if fb is None:
            return [fill_compiled(template, sims.sim(i), qdurs_list[i])
                    for i in range(len(qdurs_list))]
        return [fb.fill(i, float(sims.makespan[i])) if fb.ok(i)
                else fill_compiled(template, sims.sim(i), qdurs_list[i])
                for i in range(len(qdurs_list))]
    return [fill_compiled(template, sim, qd)
            for sim, qd in zip(sims, qdurs_list)]


def windowed_utilization_batch(graph_batch: GraphBatch):
    """The engine's windowed-utilization fold for every valid row."""
    return native.windowed_util_batch(
        graph_batch.ga, graph_batch.start, graph_batch.ev_end,
        graph_batch.ev_order, graph_batch.makespan)
