"""The sweep engine: many what-if points, one schedule template each.

:class:`SweepEngine` is the entry point for evaluating families of
pipeline configurations — the fig5/6/9-16 grids, the interleaved sweep,
table 2, the capacity planner, and any user-defined what-if search.  It
keeps three bounded caches:

* **stage costs** — ``compute_stage_costs`` results keyed by
  ``(arch, hardware, b_micro, layers_per_stage, overhead, factor_blocks)``,
  shared between the simulator path and the analytic §3.3 perf-model
  path (``perf_model()``);
* **schedule templates** — compiled task-graph + K-FAC-inventory
  structure per :class:`~repro.sweep.template.TemplateKey`;
* **per-template timings** — evaluated duration tables, so repeated or
  exactly-rescalable points skip the simulation entirely.

``run()`` produces a :class:`~repro.pipefisher.runner.PipeFisherReport`
**bit-identical** to ``PipeFisherRun.execute()`` for the same
configuration (asserted by ``tests/sweep/test_engine_equivalence.py``
and re-checked against goldens in ``tests/experiments/``): the compiled
re-timing replays the executor's and bubble filler's float operations in
the reference order, and utilizations are folded with the reference's
exact summation order.  The only approximate thing about the engine is
*nothing* — points that cannot be exactly rescaled are re-executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from itertools import islice
from time import perf_counter

from repro.perfmodel.arch import TransformerArch
from repro.perfmodel.calibration import host_overhead
from repro.perfmodel.costs import StageCosts, compute_stage_costs
from repro.perfmodel.hardware import Hardware
from repro.perfmodel.model import PipelinePerfModel
from repro.pipefisher.assignment import AssignmentResult
from repro.pipefisher.runner import PipeFisherReport, PipeFisherRun
from repro.pipefisher.workqueue import KFACWorkItem, KFACWorkQueue
from repro.pipeline.comm import CommModel
from repro.profiler.timeline import Timeline, TimelineEvent
from repro.profiler.utilization import COLOR_DENSITY
from repro.sweep import batch as _batch
from repro.sweep import delta as _delta
from repro.sweep.cache import BoundedCache
from repro.sweep.retime import (
    CompiledFill,
    CompiledSim,
    exact_pow2_ratio,
    fill_compiled,
    rescale_safe,
    rescale_timing,
    tie_margins,
)
from repro.pipeline.spec import get_spec
from repro.sweep.template import (
    DUR_BWD,
    DUR_BWD_INPUT,
    DUR_BWD_WEIGHT,
    DUR_FWD,
    DUR_OVERHEAD,
    DUR_PRECOND,
    DUR_SYNC_GRAD,
    DUR_ZERO,
    N_DUR_CODES,
    QDUR_CURV_A,
    QDUR_CURV_B,
    QDUR_INV,
    QDUR_SYNC_CURV,
    ScheduleTemplate,
    TemplateKey,
    build_template,
    stages_per_device,
    structural_group_size,
)


@dataclass(frozen=True)
class CompiledPoint:
    """One sweep point resolved to its compiled structure + durations.

    The template is shared (cached per :class:`TemplateKey`); the
    duration tables are this point's timing.  Consumers that re-time the
    same structure many ways — the Monte Carlo replicator perturbs these
    tables per seed — hold a ``CompiledPoint`` and call
    :func:`~repro.sweep.retime.simulate_compiled` directly, skipping
    every per-point graph rebuild.
    """

    template: ScheduleTemplate
    base_durs: tuple
    pf_durs: tuple
    qdurs: tuple


@dataclass
class _Evaluation:
    """Everything computed for one (template, duration table) pair."""

    base: CompiledSim
    pf: CompiledSim
    fill: CompiledFill
    base_util: float
    pf_util: float
    refresh: int
    #: Lazily computed tie-gap spectrum used to validate exact rescales.
    margins: tuple[float, float] | None = field(default=None, repr=False)


class SweepEngine:
    """Evaluate sweeps of pipeline configurations with structure reuse.

    Parameters
    ----------
    max_templates:
        Distinct structural configurations kept compiled (LRU).
    max_costs:
        Stage-cost models kept (shared simulator + perf-model cache).
    max_timings:
        Evaluated duration tables kept *per template*.
    """

    def __init__(
        self,
        max_templates: int = 32,
        max_costs: int = 512,
        max_timings: int = 16,
    ) -> None:
        self._templates: BoundedCache = BoundedCache(maxsize=max_templates)
        self._costs: BoundedCache = BoundedCache(maxsize=max_costs)
        self._max_timings = max_timings
        #: Evaluation counters (exposed via :meth:`stats`).
        self.runs = 0
        self.timing_hits = 0
        self.rescales = 0
        self.reexecutions = 0
        #: Re-executions served by the native core (subset of the above).
        self.native_evals = 0
        #: Re-executions served by a delta suffix replay (subset as well).
        self.delta_retimes = 0
        #: Points evaluated through a multi-point vectorized pass.
        self.batched_points = 0
        #: Monte Carlo replicates re-timed through a native batch pass.
        self.mc_batched_replicates = 0
        #: Fault-carrying subset of the above (restart-replay core).
        self.mc_faulty_batched = 0
        #: Wall-clock seconds per evaluation phase (see :meth:`stats`).
        self.phase_s = dict.fromkeys(
            ("template_build", "retime", "fill", "report"), 0.0)

    # -- caches -------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every template, cost model, timing, and counter."""
        self._templates.clear()
        self._costs.clear()
        self.runs = 0
        self.timing_hits = 0
        self.rescales = 0
        self.reexecutions = 0
        self.native_evals = 0
        self.delta_retimes = 0
        self.batched_points = 0
        self.mc_batched_replicates = 0
        self.mc_faulty_batched = 0
        self.phase_s = dict.fromkeys(self.phase_s, 0.0)

    def stats(self) -> dict:
        """Cache and evaluation counters, for tests and reporting.

        ``phase_s`` attributes the engine's wall-clock between template
        compilation (+ cost models), re-timing (rescale checks, event
        simulation), bubble filling, and report assembly, so a sweep's
        speedup is attributable to a phase.  Pool workers' phase time is
        folded in as worker CPU seconds.
        """
        timings = sum(len(t.timings) for t in self._templates.values())
        return {
            "templates": self._templates.stats(),
            "stage_costs": self._costs.stats(),
            "cached_timings": timings,
            "runs": self.runs,
            "timing_hits": self.timing_hits,
            "rescales": self.rescales,
            "reexecutions": self.reexecutions,
            "native_evals": self.native_evals,
            "delta_retimes": self.delta_retimes,
            "batched_points": self.batched_points,
            "mc_batched_replicates": self.mc_batched_replicates,
            "mc_faulty_batched": self.mc_faulty_batched,
            "phase_s": dict(self.phase_s),
        }

    def stage_costs(
        self,
        arch: TransformerArch,
        hardware: Hardware,
        b_micro: int,
        layers_per_stage: int,
        schedule: str,
        factor_blocks: int = 1,
    ) -> StageCosts:
        """Cached :func:`compute_stage_costs` (simulator-path flavor)."""
        return self._cost(arch, hardware, b_micro, layers_per_stage,
                          host_overhead(schedule), factor_blocks)

    def _cost(self, arch, hardware, b_micro, layers_per_stage, overhead_s,
              factor_blocks) -> StageCosts:
        key = (arch, hardware, b_micro, layers_per_stage, overhead_s,
               factor_blocks)
        return self._costs.get_or_create(
            key,
            lambda: compute_stage_costs(
                arch, hardware, b_micro,
                layers_per_stage=layers_per_stage,
                overhead_s=overhead_s,
                factor_blocks=factor_blocks,
            ),
        )

    # -- analytic §3.3 path -------------------------------------------------------

    def perf_model(
        self,
        arch: TransformerArch,
        hardware: Hardware,
        schedule: str = "chimera",
        layers_per_stage: int = 1,
        include_overhead: bool = False,
        factor_blocks: int = 1,
    ) -> PipelinePerfModel:
        """A :class:`PipelinePerfModel` whose cost model is engine-cached.

        ``report``/``sweep`` results are bit-identical to an uncached
        model — the cache returns the same pure-function results — but a
        grid over ``(b_micro, depth, n_micro_factor)`` computes each
        distinct ``(arch, hardware, b_micro)`` cost model once instead
        of twice per cell.  The cache is shared across schedules with
        equal calibrated overhead and with the simulator path.
        """
        return _CachedPerfModel(self, arch, hardware, schedule,
                                layers_per_stage, include_overhead,
                                factor_blocks)

    # -- simulator path -----------------------------------------------------------

    def run(self, run: PipeFisherRun, costs: StageCosts | None = None
            ) -> PipeFisherReport:
        """Evaluate one point, bit-identical to ``run.execute()``.

        ``costs`` overrides the cached stage-cost model (ablations and
        the rescale tests use synthetic costs; normal sweeps leave it
        None).
        """
        self.runs += 1
        point = self.compiled_point(run, costs)
        evaluation = self._evaluate(point.template, point.base_durs,
                                    point.pf_durs, point.qdurs)
        return self._build_report(run, point.template, point.qdurs,
                                  evaluation)

    def compiled_point(self, run: PipeFisherRun,
                       costs: StageCosts | None = None) -> CompiledPoint:
        """Resolve ``run`` to its cached template + duration tables.

        The structural half of :meth:`run`: the template is compiled (or
        served from the cache) and the point's duration tables are
        computed, but nothing is simulated.  Re-timing consumers — the
        stochastic Monte Carlo driver, ad-hoc what-if scripts — pair this
        with :meth:`nominal_evaluation` and
        :func:`~repro.sweep.retime.simulate_compiled`.
        """
        t_begin = perf_counter()
        try:
            return self._compiled_point(run, costs)
        finally:
            self.phase_s["template_build"] += perf_counter() - t_begin

    def _compiled_point(self, run: PipeFisherRun,
                        costs: StageCosts | None = None) -> CompiledPoint:
        if costs is None:
            costs = self.stage_costs(run.arch, run.hardware, run.b_micro,
                                     run.layers_per_stage, run.schedule)
        comm = CommModel(allreduce_gbs=run.hardware.interconnect_gbs)
        pf_cfg = run._config(precondition=True, costs=costs, comm=comm)

        n_stages = stages_per_device(run.schedule, run.virtual_chunks)
        world = structural_group_size(run.schedule, run.dp) * run.world_multiplier
        sync_curv_s = 0.0
        if run.inversion_parallel:
            factor_bytes = (run.layers_per_stage * n_stages
                            * run.arch.factor_bytes())
            sync_curv_s = comm.allreduce_time(factor_bytes, world)
        key = TemplateKey(
            schedule=run.schedule,
            depth=run.depth,
            n_micro=run.n_micro,
            virtual_chunks=(run.virtual_chunks
                            if get_spec(run.schedule).uses_virtual_chunks
                            else 0),
            layers_per_stage=run.layers_per_stage,
            dp=run.dp,
            world_multiplier=run.world_multiplier,
            recompute=run.recompute,
            inversion_parallel=run.inversion_parallel,
            has_sync_grad=world > 1 and pf_cfg.stage_param_bytes > 0,
            has_sync_curv=(run.inversion_parallel and sync_curv_s > 0
                           and world > 1),
        )
        template = self._templates.get(key)
        if template is None:
            base_cfg = run._config(precondition=False, costs=costs, comm=comm)
            template = build_template(key, base_cfg, pf_cfg, sync_curv_s)
            template.timings = BoundedCache(maxsize=self._max_timings)
            if template.n_stages != n_stages or template.world != world:
                raise AssertionError(
                    f"structural canonicalization out of sync with the "
                    f"builders: n_stages {template.n_stages} vs {n_stages}, "
                    f"world {template.world} vs {world}"
                )
            self._templates.put(key, template)

        base_durs = self._graph_durations(pf_cfg, costs, n_stages, world,
                                          precondition=False)
        pf_durs = self._graph_durations(pf_cfg, costs, n_stages, world,
                                        precondition=True)
        block = costs.block
        qdurs = [0.0] * 4
        qdurs[QDUR_CURV_A] = block.t_curv_a
        qdurs[QDUR_CURV_B] = block.t_curv_b
        qdurs[QDUR_INV] = block.t_inv / 2.0
        qdurs[QDUR_SYNC_CURV] = sync_curv_s

        return CompiledPoint(template=template, base_durs=base_durs,
                             pf_durs=pf_durs, qdurs=tuple(qdurs))

    def nominal_evaluation(self, point: CompiledPoint) -> _Evaluation:
        """The deterministic (unperturbed) evaluation of a compiled point.

        Served from the template's timing cache when available — Monte
        Carlo replicates share one nominal evaluation as their reference
        timing and time unit.
        """
        return self._evaluate(point.template, point.base_durs,
                              point.pf_durs, point.qdurs)

    def run_many(self, runs, jobs: int | None = None, window: int = 64):
        """Evaluate any iterable of points, streaming reports lazily.

        Points are consumed in windows of ``window``; each window's
        uncached duration tables are grouped by template and evaluated
        as one vectorized batch through the native core (falling back
        per point where unsupported), then reports stream out in input
        order.  Results, and the evolution of every cache and counter a
        consumer can observe, are identical to looping :meth:`run`.

        ``jobs=N`` (N > 1) fans each window's uncached evaluations out
        to a pool of N worker processes, which receive pickled
        (stripped) templates from this engine's shared template cache
        and return plain timing payloads; reports are still assembled —
        bit-identically — in this process, in input order.
        """
        if jobs is not None and jobs > 1:
            return self._run_many_pool(runs, jobs, window)
        return self._run_many_seq(runs, window)

    def _run_many_seq(self, runs, window: int):
        def gen():
            it = iter(runs)
            while True:
                chunk = list(islice(it, window))
                if not chunk:
                    return
                points = [None] * len(chunk)
                for i, r in enumerate(chunk):
                    self.runs += 1
                    points[i] = self.compiled_point(r)
                primed = self._prime_batch(points)
                yield from self._consume(chunk, points, primed)
        return gen()

    def _run_many_pool(self, runs, jobs: int, window: int):
        def gen():
            from concurrent.futures import ProcessPoolExecutor
            from repro.sweep import pool as _pool
            ex = ProcessPoolExecutor(max_workers=jobs)
            try:
                it = iter(runs)
                while True:
                    chunk = list(islice(it, window * jobs))
                    if not chunk:
                        return
                    points = [None] * len(chunk)
                    for i, r in enumerate(chunk):
                        self.runs += 1
                        points[i] = self.compiled_point(r)
                    primed = self._prime_pool(ex, _pool, points, jobs)
                    yield from self._consume(chunk, points, primed)
            finally:
                ex.shutdown()
        return gen()

    def _consume(self, chunk, points, primed):
        """Yield the window's reports in order, committing primed work.

        Primed evaluations enter the timing cache at consumption time —
        the same order a sequential loop would put them — so LRU
        eviction, rescale candidacy, and every counter evolve exactly
        as without batching.
        """
        for r, p in zip(chunk, points):
            dur_key = (p.base_durs, p.pf_durs, p.qdurs)
            ev = primed.pop((id(p.template), dur_key), None)
            if ev is not None:
                p.template.timings.put(dur_key, ev)
            else:
                ev = self._evaluate(p.template, *dur_key)
            yield self._build_report(r, p.template, p.qdurs, ev)

    def _group_uncached(self, points):
        """The window's distinct un-evaluated duration tables, grouped
        per template in first-appearance order."""
        groups: dict[int, tuple] = {}
        seen: set = set()
        for p in points:
            dur_key = (p.base_durs, p.pf_durs, p.qdurs)
            k = (id(p.template), dur_key)
            if k in seen or dur_key in p.template.timings:
                continue
            seen.add(k)
            groups.setdefault(id(p.template), (p.template, []))[1].append(
                dur_key)
        return groups

    def _prime_batch(self, points) -> dict:
        """Evaluate a window's uncached tables template-by-template.

        Exact pow2 rescales are peeled off first (cheap, python); the
        rest of each group runs through the native core as one
        vectorized pass.  Rows that cannot be primed (no native core,
        fallback-needed statuses) are simply absent — :meth:`_consume`
        sends them through the sequential path.
        """
        primed: dict = {}
        for template, keys in self._group_uncached(points).values():
            rest = []
            for dur_key in keys:
                ev = self._try_rescale(template, *dur_key)
                if ev is not None:
                    self.rescales += 1
                    primed[(id(template), dur_key)] = ev
                else:
                    rest.append(dur_key)
            if len(rest) > 1 and _batch.batching_supported(template):
                evaluated = self._batch_execute(template, rest)
                for dur_key, ev in evaluated.items():
                    self.reexecutions += 1
                    self.native_evals += 1
                    self.batched_points += 1
                    primed[(id(template), dur_key)] = ev
        return primed

    def _prime_pool(self, ex, _pool, points, jobs: int) -> dict:
        """Pool flavor of :meth:`_prime_batch`: rescales stay local,
        everything else is sharded across the worker processes."""
        primed: dict = {}
        tasks = []
        for template, keys in self._group_uncached(points).values():
            rest = []
            for dur_key in keys:
                ev = self._try_rescale(template, *dur_key)
                if ev is not None:
                    self.rescales += 1
                    primed[(id(template), dur_key)] = ev
                else:
                    rest.append(dur_key)
            if rest:
                tasks.append((template, rest))
        futures = []
        for template, rest in tasks:
            stripped = _pool.picklable_template(template)
            per = max(1, -(-len(rest) // jobs))
            for lo in range(0, len(rest), per):
                part = rest[lo:lo + per]
                futures.append(
                    (template, part,
                     ex.submit(_pool.eval_worker, stripped, part)))
        for template, part, fut in futures:
            payloads, retime_s, fill_s = fut.result()
            self.phase_s["retime"] += retime_s
            self.phase_s["fill"] += fill_s
            for dur_key, payload in zip(part, payloads):
                ev = _pool.evaluation_from_payload(payload)
                self.reexecutions += 1
                if getattr(ev, "_native", False):
                    self.native_evals += 1
                self.batched_points += 1
                primed[(id(template), dur_key)] = ev
        return primed

    def _batch_execute(self, template, keys: list) -> dict:
        """Natively evaluate many duration tables of one template.

        Returns ``{dur_key: _Evaluation}``; rows needing the python
        fallback are omitted rather than evaluated here, so the caller's
        sequential path raises the reference's errors where it would.
        """
        t_begin = perf_counter()
        gb_b = _batch.simulate_graph_batch(
            template.base_graph, [k[0] for k in keys])
        gb_p = _batch.simulate_graph_batch(
            template.pf_graph, [k[1] for k in keys])
        if gb_b is None or gb_p is None:
            self.phase_s["retime"] += perf_counter() - t_begin
            return {}
        base_util = _batch.windowed_utilization_batch(gb_b)
        self.phase_s["retime"] += perf_counter() - t_begin
        t_begin = perf_counter()
        fb = _batch.fill_graph_batch(template, gb_p, [k[2] for k in keys])
        out: dict = {}
        if fb is not None:
            for i, dur_key in enumerate(keys):
                if not (gb_b.ok(i) and gb_p.ok(i) and fb.ok(i)):
                    continue
                pf = gb_p.sim(i)
                out[dur_key] = _Evaluation(
                    base=gb_b.sim(i),
                    pf=pf,
                    fill=fb.fill(i, pf.makespan),
                    base_util=float(base_util[i]),
                    pf_util=float(fb.pf_util[i]),
                    refresh=max(int(fb.refresh[i]), 1),
                )
        self.phase_s["fill"] += perf_counter() - t_begin
        return out

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _graph_durations(cfg, costs: StageCosts, n_stages: int, world: int,
                         precondition: bool) -> tuple:
        """The per-point duration table, one entry per duration code.

        Each expression replicates the corresponding schedule-builder
        duration computation operation for operation.
        """
        c = costs
        durs = [0.0] * N_DUR_CODES
        durs[DUR_FWD] = c.t_fwd
        durs[DUR_BWD] = c.t_bwd + (c.t_fwd if cfg.recompute else 0.0)
        durs[DUR_BWD_INPUT] = c.t_bwd_input + (c.t_fwd if cfg.recompute else 0.0)
        durs[DUR_BWD_WEIGHT] = c.t_bwd_weight
        if world > 1 and cfg.stage_param_bytes > 0:
            durs[DUR_SYNC_GRAD] = cfg.comm.allreduce_time(
                cfg.stage_param_bytes * n_stages, world
            )
        if precondition:
            durs[DUR_PRECOND] = c.t_prec * n_stages
        durs[DUR_OVERHEAD] = c.t_overhead
        durs[DUR_ZERO] = 0.0
        return tuple(durs)

    def _evaluate(self, template: ScheduleTemplate, base_durs: tuple,
                  pf_durs: tuple, qdurs: tuple) -> _Evaluation:
        """Time + fill one duration table.

        The pipeline, cheapest first: timing-cache hit → exact pow2
        rescale of a cached timing → native single-point execution →
        delta suffix replay of the last recorded execution → full
        reference re-execution.  Every path produces bit-identical
        values; they differ only in cost.
        """
        timings: BoundedCache = template.timings
        dur_key = (base_durs, pf_durs, qdurs)
        cached = timings.get(dur_key)
        if cached is not None:
            self.timing_hits += 1
            return cached

        evaluation = self._try_rescale(template, base_durs, pf_durs, qdurs)
        if evaluation is not None:
            self.rescales += 1
        else:
            evaluation = self._execute_one(template, base_durs, pf_durs,
                                           qdurs)
            self.reexecutions += 1
        timings.put(dur_key, evaluation)
        return evaluation

    def _try_rescale(self, template: ScheduleTemplate, base_durs: tuple,
                     pf_durs: tuple, qdurs: tuple) -> _Evaluation | None:
        """An evaluation exactly rescaled from a cached timing, or None.

        A pow2 ratio between full duration tables rescales every float
        exactly (same mantissas, shifted exponents), provided no
        event-order tie sits closer than the margin — the reference
        arithmetic would land on the same schedule, so this *is* the
        re-execution's result.
        """
        timings: BoundedCache = template.timings
        t_begin = perf_counter()
        match = None
        for ref_key, ref in timings.items():
            a = exact_pow2_ratio(
                base_durs + pf_durs + qdurs,
                ref_key[0] + ref_key[1] + ref_key[2],
            )
            if a is None:
                continue
            if ref.margins is None:
                ref.margins = tie_margins([ref.base, ref.pf])
            if rescale_safe(a, *ref.margins):
                match = (ref, a)
                break
        if match is None:
            self.phase_s["retime"] += perf_counter() - t_begin
            return None
        ref, a = match
        base = rescale_timing(ref.base, a)
        pf = rescale_timing(ref.pf, a)
        self.phase_s["retime"] += perf_counter() - t_begin
        return self._fill_evaluation(template, base, pf, qdurs)

    def _execute_one(self, template: ScheduleTemplate, base_durs: tuple,
                     pf_durs: tuple, qdurs: tuple) -> _Evaluation:
        """Fully evaluate one duration table (native, delta, or python)."""
        t_begin = perf_counter()
        base = pf = None
        gb_p = None
        if _batch.batching_supported(template):
            gb_b = _batch.simulate_graph_batch(
                template.base_graph, [base_durs])
            gb_p = _batch.simulate_graph_batch(template.pf_graph, [pf_durs])
            if (gb_b is not None and gb_p is not None
                    and gb_b.ok(0) and gb_p.ok(0)):
                base = gb_b.sim(0)
                pf = gb_p.sim(0)
                base_util = float(
                    _batch.windowed_utilization_batch(gb_b)[0])
                self.native_evals += 1
            else:
                gb_p = None
        if base is None:
            base, delta_b = self._sim_delta(template, "base",
                                            template.base_graph, base_durs)
            pf, delta_p = self._sim_delta(template, "pf",
                                          template.pf_graph, pf_durs)
            if delta_b or delta_p:
                self.delta_retimes += 1
            base_util = self._windowed_utilization(template.base_graph, base)
        self.phase_s["retime"] += perf_counter() - t_begin

        if gb_p is not None:
            t_begin = perf_counter()
            fb = _batch.fill_graph_batch(template, gb_p, [qdurs])
            if fb is not None and fb.ok(0):
                evaluation = _Evaluation(
                    base=base,
                    pf=pf,
                    fill=fb.fill(0, pf.makespan),
                    base_util=base_util,
                    pf_util=float(fb.pf_util[0]),
                    refresh=max(int(fb.refresh[0]), 1),
                )
                self.phase_s["fill"] += perf_counter() - t_begin
                return evaluation
            self.phase_s["fill"] += perf_counter() - t_begin
        return self._fill_evaluation(template, base, pf, qdurs,
                                     base_util=base_util)

    def _fill_evaluation(self, template: ScheduleTemplate, base: CompiledSim,
                         pf: CompiledSim, qdurs: tuple,
                         base_util: float | None = None) -> _Evaluation:
        """The reference fill + utilization folds around timed sims."""
        t_begin = perf_counter()
        fill = fill_compiled(template, pf, qdurs)
        refresh = max(fill.device_steps.values(), default=1)
        refresh = max(refresh, 1)
        evaluation = _Evaluation(
            base=base,
            pf=pf,
            fill=fill,
            base_util=(self._windowed_utilization(template.base_graph, base)
                       if base_util is None else base_util),
            pf_util=self._pf_utilization(template, pf, fill, qdurs, refresh),
            refresh=refresh,
        )
        self.phase_s["fill"] += perf_counter() - t_begin
        return evaluation

    def _sim_delta(self, template: ScheduleTemplate, slot: str, graph,
                   durs: tuple) -> tuple[CompiledSim, bool]:
        """Simulate ``durs``, replaying a recorded suffix when possible.

        Each graph keeps the trace of its most recent full execution on
        the template (bounded memory: one trace per graph); a table
        whose changed codes all dispatch late resumes from the deepest
        shared checkpoint instead of replaying the whole schedule.
        """
        traces = getattr(template, "_delta_traces", None)
        if traces is None:
            traces = template._delta_traces = {}
        trace = traces.get(slot)
        if trace is not None and trace.graph is graph:
            resumed = _delta.resume(trace, durs)
            if resumed is not None:
                return resumed, True
        sim, trace = _delta.simulate_recording(graph, durs)
        traces[slot] = trace
        return sim, False

    @staticmethod
    def _windowed_utilization(graph, sim: CompiledSim) -> float:
        """Replicates ``utilization(timeline, (0.0, makespan))`` exactly."""
        t1 = sim.makespan
        total = 0.0
        start = sim.start
        end = sim.ev_end
        kind = graph.kind
        density = COLOR_DENSITY
        for i in sim.ev_order:
            e = end[i]
            s = start[i]
            if e <= 0.0 or s >= t1:
                continue
            total += (min(e, t1) - max(s, 0.0)) * density.get(kind[i], 1.0)
        return total / (graph.num_devices * (t1 - 0.0))

    @staticmethod
    def _pf_utilization(template: ScheduleTemplate, pf: CompiledSim,
                        fill: CompiledFill, qdurs: tuple, refresh: int
                        ) -> float:
        """Replicates the runner's arithmetic refresh-cycle utilization."""
        density = COLOR_DENSITY
        kind = template.pf_graph.kind
        start = pf.start
        end = pf.ev_end
        c_template = 0.0
        for i in pf.ev_order:
            c_template += (end[i] - start[i]) * density.get(kind[i], 1.0)
        c_kfac = 0.0
        for dev in sorted(fill.segments):
            items = template.queues.devices[dev].items
            for pos, segs in enumerate(fill.segments[dev]):
                rho = density.get(items[pos].kind, 1.0)
                for s, e in segs:
                    c_kfac += (e - s) * rho
        pf_colored = refresh * c_template + c_kfac
        return pf_colored / (template.num_devices * refresh * pf.makespan)

    def _build_report(self, run: PipeFisherRun, template: ScheduleTemplate,
                      qdurs: tuple, ev: _Evaluation) -> PipeFisherReport:
        """Assemble a ``PipeFisherReport`` equal to the reference's.

        The assignment and one-step template timelines are deferred
        behind the report's lazy sources: sweeps that only read numbers
        never pay for per-item/per-event object construction.
        """
        t_begin = perf_counter()
        base_graph, base_sim = template.base_graph, ev.base
        pf_graph, pf_sim = template.pf_graph, ev.pf
        report = PipeFisherReport(
            schedule=run.schedule,
            num_devices=template.num_devices,
            baseline_step_time=ev.base.makespan,
            baseline_utilization=ev.base_util,
            pipefisher_step_time=ev.pf.makespan,
            pipefisher_utilization=ev.pf_util,
            refresh_steps=ev.refresh,
            device_refresh_steps=dict(ev.fill.device_steps),
            assignment_source=partial(_materialize_assignment,
                                      template, qdurs, ev),
            base_template_source=partial(_materialize, base_graph, base_sim),
            pf_template_source=partial(_materialize, pf_graph, pf_sim),
            window_steps=run.window_steps,
        )
        if run.materialize_window:
            report.baseline_timeline
            report.pipefisher_timeline
        self.phase_s["report"] += perf_counter() - t_begin
        return report


class _CachedPerfModel(PipelinePerfModel):
    """A perf model whose ``stage_costs`` consults the engine cache."""

    def __init__(self, engine: SweepEngine, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._engine = engine

    def stage_costs(self, b_micro: int) -> StageCosts:
        return self._engine._cost(
            self.arch, self.hardware, b_micro, self.layers_per_stage,
            host_overhead(self.schedule), self.factor_blocks,
        )


def _materialize_assignment(template: ScheduleTemplate, qdurs: tuple,
                            ev: _Evaluation) -> AssignmentResult:
    """Build the per-item ``AssignmentResult`` a re-timed report exposes."""
    queues: dict[int, KFACWorkQueue] = {}
    for dev in range(template.num_devices):
        items = template.queues.devices[dev].items
        segs = ev.fill.segments[dev]
        queues[dev] = KFACWorkQueue(
            device=dev,
            items=[
                KFACWorkItem(
                    iid=it.iid,
                    device=it.device,
                    kind=it.kind,
                    factor=it.factor,
                    stage=it.stage,
                    block=it.block,
                    micro_batch=it.micro_batch,
                    pipeline=it.pipeline,
                    duration=qdurs[it.dur_code],
                    trigger=it.trigger,
                    segments=list(segs[pos]),
                )
                for pos, it in enumerate(items)
            ],
        )
    return AssignmentResult(
        queues=queues,
        refresh_steps=ev.refresh,
        span=ev.pf.makespan,
        device_refresh_steps=dict(ev.fill.device_steps),
    )


def _materialize(graph, sim: CompiledSim) -> Timeline:
    """Build the one-step :class:`Timeline` a re-timed report renders from.

    Event values (device, kind, start, end, label) match the reference
    simulation's.  ``meta`` dicts are *copied* per event: the reference
    builds fresh task (and hence meta) objects per run, so a consumer
    annotating one report's events must never reach another report of
    the same template — or the template's cached dicts.
    """
    tl = Timeline(graph.num_devices)
    for i in sim.ev_order:
        tl.add(TimelineEvent(graph.device[i], graph.kind[i], sim.start[i],
                             sim.ev_end[i], graph.label[i],
                             dict(graph.meta[i])))
    return tl


#: Process-wide engine the experiment drivers share (one template/cost
#: cache across fig5/6/9-16, tables, the interleaved sweep, examples).
_DEFAULT: SweepEngine | None = None


def default_engine() -> SweepEngine:
    """The shared :class:`SweepEngine` used by the experiment drivers."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SweepEngine()
    return _DEFAULT
