"""Build, load, and marshal the native batch re-timing core.

``_native.c`` (same directory) is compiled on demand with whatever C
compiler the host has (``$CC``, ``gcc``, or ``cc``) into a
content-hash-named shared object under ``_build/`` — so a source edit
triggers exactly one rebuild, and concurrent processes (the sweep
pool's workers) race benignly to an atomic ``os.replace`` of the same
file.  No compiler, a failed compile, or ``REPRO_NO_NATIVE=1`` all
degrade to ``available() -> False`` and the callers' pure-python paths;
the native core is an accelerator, never a dependency.

The marshalling half lowers a :class:`~repro.sweep.template.CompiledGraph`
(and a template's K-FAC queue inventory) to the flat int32/int64/float64
arrays the C side reads, cached on the graph/template objects so a
sweep pays the conversion once per structure.  Graphs the core cannot
represent — tuple order keys from non-uniform priorities — marshal to
``None`` and the callers fall back per point.

Float semantics: the C core is compiled with ``-ffp-contract=off`` and
no fast-math, so every double operation rounds exactly like CPython's
float arithmetic and results are bit-identical to the reference
(``tests/sweep/test_batch.py`` fuzzes this across every registered
schedule).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a test/bench dep
    np = None

from repro.profiler.utilization import COLOR_DENSITY

#: Set to any non-empty value to force the pure-python paths.
DISABLE_ENV = "REPRO_NO_NATIVE"

#: Per-point status codes mirrored from ``_native.c``.
ST_OK = 0
ST_DEADLOCK = 1
ST_NO_BUBBLES = 2
ST_NO_PROGRESS = 3
ST_MAX_STEPS = 4
ST_SEG_OVERFLOW = 5
ST_REST_OVERFLOW = 6

_SRC = os.path.join(os.path.dirname(__file__), "_native.c")
_BUILD_DIR = os.path.join(os.path.dirname(__file__), "_build")
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off",
           "-fno-unsafe-math-optimizations"]

_i32 = ctypes.c_int32
_i64 = ctypes.c_int64
_f64 = ctypes.c_double
_P_i32 = ctypes.POINTER(_i32)
_P_i64 = ctypes.POINTER(_i64)
_P_f64 = ctypes.POINTER(_f64)


class _CGraph(ctypes.Structure):
    _fields_ = [
        ("n", _i32), ("num_devices", _i32), ("n_keys", _i32),
        ("n_zero", _i32), ("n_disp", _i32),
        ("device", _P_i32), ("order_key", _P_i64), ("ndeps", _P_i32),
        ("dep_off", _P_i64), ("dep_lst", _P_i32),
        ("ikey", _P_i32), ("ilim", _P_i32), ("rkey", _P_i32),
        ("zero_dep", _P_i32), ("occ_off", _P_i64), ("occ_lst", _P_i32),
        ("density", _P_f64),
    ]


class _CQDesc(ctypes.Structure):
    _fields_ = [
        ("num_devices", _i32), ("n_items", _i32),
        ("q_off", _P_i32), ("codes", _P_i32), ("trig", _P_i32),
        ("ndep_init", _P_i32), ("dep_out_off", _P_i64),
        ("dep_out", _P_i32), ("qdensity", _P_f64),
    ]


_lib = None
_lib_error: str | None = None
_lib_lock = threading.Lock()


def _find_compiler() -> str | None:
    cc = os.environ.get("CC")
    candidates = ([cc] if cc else []) + ["gcc", "cc"]
    for name in candidates:
        path = name if os.path.sep in name else _which(name)
        if path:
            return path
    return None


def _which(name: str) -> str | None:
    for d in os.environ.get("PATH", "").split(os.pathsep):
        p = os.path.join(d, name)
        if os.path.isfile(p) and os.access(p, os.X_OK):
            return p
    return None


def _build_lib() -> str:
    """Compile ``_native.c`` (if needed) and return the .so path."""
    with open(_SRC, "rb") as f:
        src = f.read()
    tag = hashlib.sha256(src + b"\0" + " ".join(_CFLAGS).encode()).hexdigest()
    out = os.path.join(_BUILD_DIR, f"reprosim-{tag[:16]}.so")
    if os.path.exists(out):
        return out
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (set $CC or install gcc)")
    os.makedirs(_BUILD_DIR, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=_BUILD_DIR)
    os.close(fd)
    try:
        subprocess.run([compiler, *_CFLAGS, "-o", tmp, _SRC],
                       check=True, capture_output=True)
        os.replace(tmp, out)  # atomic: concurrent builders converge
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return out


def _load():
    global _lib, _lib_error
    if _lib is not None or _lib_error is not None:
        return _lib
    with _lib_lock:
        if _lib is not None or _lib_error is not None:
            return _lib
        try:
            lib = ctypes.CDLL(_build_lib())
            lib.repro_sim_batch.argtypes = [
                ctypes.POINTER(_CGraph), _i32, _P_f64,
                _P_f64, _P_f64, _P_f64, _P_i32, _P_f64, _P_i32,
            ]
            lib.repro_sim_batch.restype = ctypes.c_int
            lib.repro_sim_fault_batch.argtypes = [
                ctypes.POINTER(_CGraph), _i32, _P_f64,
                _P_i64, _P_f64, _P_f64, _P_f64, _i32,
                _P_f64, _P_f64, _P_f64, _P_i32, _P_f64,
                _P_i32, _P_i32, _P_f64, _P_f64, _P_f64, _P_i32,
                _P_i32,
            ]
            lib.repro_sim_fault_batch.restype = ctypes.c_int
            lib.repro_fill_batch.argtypes = [
                ctypes.POINTER(_CGraph), ctypes.POINTER(_CQDesc), _i32,
                _P_f64, _P_f64, _P_f64, _P_f64, _P_i32,
                _i32, _f64, _f64, _i32,
                _P_i32, _P_i32, _P_i32, _P_f64, _P_f64, _P_i32,
                _P_f64, _P_i32,
            ]
            lib.repro_fill_batch.restype = ctypes.c_int
            lib.repro_windowed_util_batch.argtypes = [
                ctypes.POINTER(_CGraph), _i32, _P_f64, _P_f64, _P_i32,
                _P_f64, _P_f64,
            ]
            lib.repro_windowed_util_batch.restype = ctypes.c_int
            lib.repro_mc_metrics_batch.argtypes = [
                ctypes.POINTER(_CGraph), _i32, _P_f64, _P_f64, _P_i32,
                _P_f64, _P_f64, _P_f64,
            ]
            lib.repro_mc_metrics_batch.restype = ctypes.c_int
            _lib = lib
        except Exception as exc:  # no compiler / bad toolchain: fall back
            _lib_error = f"{type(exc).__name__}: {exc}"
            _lib = None
    return _lib


def available() -> bool:
    """True when the native core can be used (compiled + not disabled)."""
    if np is None or os.environ.get(DISABLE_ENV):
        return False
    return _load() is not None


def native_status() -> str:
    """Human-readable state, for diagnostics."""
    if os.environ.get(DISABLE_ENV):
        return f"disabled ({DISABLE_ENV} set)"
    if np is None:
        return "unavailable (numpy missing)"
    if _load() is not None:
        return "compiled and loaded"
    return f"unavailable ({_lib_error})"


def _ptr_i32(a):
    return a.ctypes.data_as(_P_i32)


def _ptr_i64(a):
    return a.ctypes.data_as(_P_i64)


def _ptr_f64(a):
    return a.ctypes.data_as(_P_f64)


class GraphArrays:
    """A :class:`CompiledGraph` lowered to the C core's array layout."""

    __slots__ = ("graph", "n", "num_devices", "n_disp", "dur_code",
                 "struct", "_keep")

    def __init__(self, g) -> None:
        n = g.n
        device = np.fromiter(
            ((-1 if d is None else d) for d in g.device), np.int32, n)
        order_key = np.fromiter(g.order_key, np.int64, n)
        ndeps = np.fromiter(g.ndeps, np.int32, n)
        dep_off = np.zeros(n + 1, np.int64)
        for i, deps in enumerate(g.dependents):
            dep_off[i + 1] = dep_off[i] + len(deps)
        dep_lst = np.fromiter(
            (d for deps in g.dependents for d in deps), np.int32, dep_off[n])
        ikey = np.fromiter(g.inflight_key, np.int32, n)
        ilim = np.fromiter(g.inflight_limit, np.int32, n)
        rkey = np.fromiter(g.release_key, np.int32, n)
        zero_dep = np.fromiter(g.zero_dep, np.int32, len(g.zero_dep))
        D = g.num_devices
        occ_off = np.zeros(D + 1, np.int64)
        for d in range(D):
            occ_off[d + 1] = occ_off[d] + len(g.occupying_by_device[d])
        occ_lst = np.fromiter(
            (t for occ in g.occupying_by_device for t in occ),
            np.int32, occ_off[D])
        density = np.fromiter(
            (COLOR_DENSITY.get(k, 1.0) for k in g.kind), np.float64, n)
        n_disp = int((device >= 0).sum())

        self.graph = g
        self.n = n
        self.num_devices = D
        self.n_disp = n_disp
        self.dur_code = np.fromiter(g.dur_code, np.int64, n)
        self._keep = (device, order_key, ndeps, dep_off, dep_lst, ikey,
                      ilim, rkey, zero_dep, occ_off, occ_lst, density)
        self.struct = _CGraph(
            n=n, num_devices=D, n_keys=g.n_inflight_keys,
            n_zero=len(g.zero_dep), n_disp=n_disp,
            device=_ptr_i32(device), order_key=_ptr_i64(order_key),
            ndeps=_ptr_i32(ndeps), dep_off=_ptr_i64(dep_off),
            dep_lst=_ptr_i32(dep_lst), ikey=_ptr_i32(ikey),
            ilim=_ptr_i32(ilim), rkey=_ptr_i32(rkey),
            zero_dep=_ptr_i32(zero_dep), occ_off=_ptr_i64(occ_off),
            occ_lst=_ptr_i32(occ_lst), density=_ptr_f64(density),
        )


def graph_arrays(g) -> GraphArrays | None:
    """The cached native lowering of ``g``, or None if unsupported."""
    cached = getattr(g, "_native_arrays", None)
    if cached is not None:
        return cached if cached is not False else None
    supported = all(
        isinstance(k, int) and 0 <= k < 2 ** 63 for k in g.order_key)
    if not supported or not available():
        if not supported:  # structural, never changes: cache the refusal
            g._native_arrays = False
        return None
    ga = GraphArrays(g)
    g._native_arrays = ga
    return ga


class QueueArrays:
    """A template's K-FAC inventory lowered to the C core's layout."""

    __slots__ = ("n_items", "seg_cap", "struct", "q_off_list", "_keep")

    def __init__(self, template) -> None:
        D = template.num_devices
        devices = template.queues.devices
        q_off = np.zeros(D + 1, np.int32)
        codes: list[int] = []
        trig: list[int] = []
        ndep_init: list[int] = []
        dep_out: list[list[int]] = []
        qdensity: list[float] = []
        for dev in range(D):
            dq = devices[dev]
            q_off[dev + 1] = q_off[dev] + len(dq.items)
            codes.extend(dq.codes)
            trig.extend(dq.trig)
            for pos, item in enumerate(dq.items):
                ndep_init.append(len(item.dep_positions))
                dep_out.append(dq.dependents.get(pos, []))
                qdensity.append(COLOR_DENSITY.get(item.kind, 1.0))
        n_items = len(codes)
        codes_a = np.asarray(codes, np.int32)
        trig_a = np.asarray(trig, np.int32)
        ndep_a = np.asarray(ndep_init, np.int32)
        dep_out_off = np.zeros(n_items + 1, np.int64)
        for i, deps in enumerate(dep_out):
            dep_out_off[i + 1] = dep_out_off[i] + len(deps)
        dep_out_a = np.fromiter(
            (d for deps in dep_out for d in deps), np.int32,
            dep_out_off[n_items])
        qdensity_a = np.asarray(qdensity, np.float64)

        self.n_items = n_items
        self.seg_cap = 4 * n_items + 256
        self.q_off_list = q_off.tolist()
        self._keep = (q_off, codes_a, trig_a, ndep_a, dep_out_off,
                      dep_out_a, qdensity_a)
        self.struct = _CQDesc(
            num_devices=D, n_items=n_items,
            q_off=_ptr_i32(q_off), codes=_ptr_i32(codes_a),
            trig=_ptr_i32(trig_a), ndep_init=_ptr_i32(ndep_a),
            dep_out_off=_ptr_i64(dep_out_off), dep_out=_ptr_i32(dep_out_a),
            qdensity=_ptr_f64(qdensity_a),
        )


def queue_arrays(template) -> QueueArrays | None:
    """The cached native lowering of a template's queues, or None."""
    cached = getattr(template, "_native_queues", None)
    if cached is not None:
        return cached if cached is not False else None
    if not available():
        return None
    if sorted(template.queues.devices) != list(range(template.num_devices)):
        template._native_queues = False  # structural: cache the refusal
        return None
    qa = QueueArrays(template)
    template._native_queues = qa
    return qa


def sim_batch(ga: GraphArrays, tdur):
    """Run the event loop for a ``(P, n)`` duration batch in one call.

    Returns ``(start, end, ev_end, ev_order, makespan, status)`` arrays;
    rows with nonzero status carry no valid data and must fall back.
    """
    lib = _load()
    P = tdur.shape[0]
    n, n_disp = ga.n, ga.n_disp
    tdur = np.ascontiguousarray(tdur, np.float64)
    start = np.empty((P, n), np.float64)
    end = np.empty((P, n), np.float64)
    ev_end = np.empty((P, n), np.float64)
    ev_order = np.empty((P, max(n_disp, 1)), np.int32)
    mk = np.empty(P, np.float64)
    status = np.empty(P, np.int32)
    lib.repro_sim_batch(
        ctypes.byref(ga.struct), P, _ptr_f64(tdur), _ptr_f64(start),
        _ptr_f64(end), _ptr_f64(ev_end), _ptr_i32(ev_order), _ptr_f64(mk),
        _ptr_i32(status))
    return start, end, ev_end, ev_order, mk, status


def sim_fault_batch(ga: GraphArrays, tdur, ft_off, ft_times, delay, ckpt):
    """Run the fault-replay event loop for a ``(P, n)`` duration batch.

    ``ft_off``/``ft_times`` is the packed per-row per-device failure-time
    CSR from :func:`repro.sweep.batch.pack_faults`; ``delay``/``ckpt``
    are per-row restart delay and checkpoint interval.  Rows with empty
    failure tables are bit-identical to :func:`sim_batch`.  Returns
    ``(start, end, ev_end, ev_order, makespan, restarts, status)`` where
    ``restarts`` is the tuple ``(dev, task, fail, resume, lost, count)``
    of per-row restart arrays at a shared row stride; rows with nonzero
    status carry no valid data and must fall back.
    """
    lib = _load()
    P = tdur.shape[0]
    n, n_disp, D = ga.n, ga.n_disp, ga.num_devices
    tdur = np.ascontiguousarray(tdur, np.float64)
    ft_off = np.ascontiguousarray(ft_off, np.int64)
    ft_times = np.ascontiguousarray(ft_times, np.float64)
    delay = np.ascontiguousarray(delay, np.float64)
    ckpt = np.ascontiguousarray(ckpt, np.float64)
    # Each failure time is consumed at most once per row, so the max
    # per-row failure total is an exact restart-row bound.
    row_tot = ft_off[D::D] - ft_off[:-1:D]
    cap = max(int(row_tot.max()) if P else 0, 1)
    start = np.empty((P, n), np.float64)
    end = np.empty((P, n), np.float64)
    ev_end = np.empty((P, n), np.float64)
    ev_order = np.empty((P, max(n_disp, 1)), np.int32)
    mk = np.empty(P, np.float64)
    rest_dev = np.empty((P, cap), np.int32)
    rest_task = np.empty((P, cap), np.int32)
    rest_fail = np.empty((P, cap), np.float64)
    rest_resume = np.empty((P, cap), np.float64)
    rest_lost = np.empty((P, cap), np.float64)
    rest_count = np.zeros(P, np.int32)
    status = np.empty(P, np.int32)
    lib.repro_sim_fault_batch(
        ctypes.byref(ga.struct), P, _ptr_f64(tdur),
        _ptr_i64(ft_off), _ptr_f64(ft_times), _ptr_f64(delay),
        _ptr_f64(ckpt), cap,
        _ptr_f64(start), _ptr_f64(end), _ptr_f64(ev_end),
        _ptr_i32(ev_order), _ptr_f64(mk),
        _ptr_i32(rest_dev), _ptr_i32(rest_task), _ptr_f64(rest_fail),
        _ptr_f64(rest_resume), _ptr_f64(rest_lost), _ptr_i32(rest_count),
        _ptr_i32(status))
    restarts = (rest_dev, rest_task, rest_fail, rest_resume, rest_lost,
                rest_count)
    return start, end, ev_end, ev_order, mk, restarts, status


def fill_batch(ga: GraphArrays, qa: QueueArrays, start, ev_end, mk, qdurs,
               ev_order):
    """Fill every point's bubbles in one call.

    Returns ``(device_steps, refresh, seg_item, seg_s, seg_e, seg_count,
    pf_util, status)``; rows with nonzero status must fall back (the
    python path raises the reference's error for genuine fill failures).
    """
    lib = _load()
    P = start.shape[0]
    D = ga.num_devices
    cap = qa.seg_cap
    start = np.ascontiguousarray(start, np.float64)
    ev_end = np.ascontiguousarray(ev_end, np.float64)
    mk = np.ascontiguousarray(mk, np.float64)
    qdurs = np.ascontiguousarray(qdurs, np.float64)
    ev_order = np.ascontiguousarray(ev_order, np.int32)
    dev_steps = np.zeros((P, D), np.int32)
    refresh = np.ones(P, np.int32)
    seg_item = np.empty((P, cap), np.int32)
    seg_s = np.empty((P, cap), np.float64)
    seg_e = np.empty((P, cap), np.float64)
    seg_count = np.zeros(P, np.int32)
    pf_util = np.zeros(P, np.float64)
    status = np.empty(P, np.int32)
    lib.repro_fill_batch(
        ctypes.byref(ga.struct), ctypes.byref(qa.struct), P,
        _ptr_f64(start), _ptr_f64(ev_end), _ptr_f64(mk), _ptr_f64(qdurs),
        _ptr_i32(ev_order), 64, 1e-5, 2e-3, cap,
        _ptr_i32(dev_steps), _ptr_i32(refresh), _ptr_i32(seg_item),
        _ptr_f64(seg_s), _ptr_f64(seg_e), _ptr_i32(seg_count),
        _ptr_f64(pf_util), _ptr_i32(status))
    return dev_steps, refresh, seg_item, seg_s, seg_e, seg_count, \
        pf_util, status


def windowed_util_batch(ga: GraphArrays, start, ev_end, ev_order, mk):
    """The engine's windowed-utilization fold for every point at once."""
    lib = _load()
    P = start.shape[0]
    util = np.empty(P, np.float64)
    lib.repro_windowed_util_batch(
        ctypes.byref(ga.struct), P,
        _ptr_f64(np.ascontiguousarray(start, np.float64)),
        _ptr_f64(np.ascontiguousarray(ev_end, np.float64)),
        _ptr_i32(np.ascontiguousarray(ev_order, np.int32)),
        _ptr_f64(np.ascontiguousarray(mk, np.float64)), _ptr_f64(util))
    return util


def mc_metrics_batch(ga: GraphArrays, start, ev_end, ev_order, mk):
    """Bubble fraction + utilization for every replicate at once."""
    lib = _load()
    P = start.shape[0]
    bubble = np.empty(P, np.float64)
    util = np.empty(P, np.float64)
    rc = lib.repro_mc_metrics_batch(
        ctypes.byref(ga.struct), P,
        _ptr_f64(np.ascontiguousarray(start, np.float64)),
        _ptr_f64(np.ascontiguousarray(ev_end, np.float64)),
        _ptr_i32(np.ascontiguousarray(ev_order, np.int32)),
        _ptr_f64(np.ascontiguousarray(mk, np.float64)),
        _ptr_f64(bubble), _ptr_f64(util))
    if rc != 0:  # allocation failure: caller falls back
        return None, None
    return bubble, util
