/* Native batch re-timing core for the sweep engine.
 *
 * A line-for-line transliteration of the pure-python hot loops in
 * repro/sweep/retime.py — simulate_compiled (the event-driven executor,
 * deterministic no-fault path), fill_compiled (the K-FAC bubble
 * filler), device_bubbles, and the utilization folds — driven over a
 * whole batch of duration tables sharing one compiled template.
 *
 * Bit-identity contract: every float operation (additions along
 * dependency chains, tie-epsilon comparisons, min/max clips, fold
 * sums) is performed on IEEE-754 doubles in exactly the order the
 * python reference performs it, with contraction disabled (the build
 * uses -ffp-contract=off and no fast-math), so results match python
 * bit for bit.  Heap pops are deterministic because every heap key is
 * unique — ready heaps compare the packed int64 order_key, the event
 * heap compares (t_end, seq) — and a binary min-heap's pop sequence
 * depends only on the key multiset, not its internal layout.
 *
 * The fault path (repro_sim_fault_batch) transliterates the
 * DeviceFaults restart-replay of simulate_compiled(faults=...): idle
 * failures delay starts, in-attempt failures lose the work since the
 * last global-time checkpoint (python float floordiv semantics,
 * replicated in py_floordiv), failures during restart downtime extend
 * the outage, and every consumed failure is recorded as a
 * (device, task, fail, resume, lost) restart row in append order.
 *
 * Anything this core cannot replicate exactly — tuple order keys,
 * filler errors (which carry python-built messages), or a buffer
 * overflow — is reported through per-point status codes and the
 * caller falls back to the python path for that point.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define TIME_EPS 1e-12  /* executor tie epsilon */
#define EPS 1e-9        /* filler placement epsilon */

/* status codes (per point) */
#define ST_OK 0
#define ST_DEADLOCK 1
#define ST_NO_BUBBLES 2
#define ST_NO_PROGRESS 3
#define ST_MAX_STEPS 4
#define ST_SEG_OVERFLOW 5
#define ST_REST_OVERFLOW 6

/* CPython float floordiv (floatobject.c float_divmod): fmod-based with
 * the sign adjustment and the 0.5-snap that keeps div an exact integer.
 * Needed for `(f // checkpoint_every) * checkpoint_every` bit-identity. */
static double py_floordiv(double vx, double wx) {
    double mod = fmod(vx, wx);
    double div = (vx - mod) / wx;
    if (mod != 0.0) {
        if ((wx < 0.0) != (mod < 0.0)) div -= 1.0;
    }
    if (div != 0.0) {
        double floordiv = floor(div);
        if (div - floordiv > 0.5) floordiv += 1.0;
        return floordiv;
    }
    return copysign(0.0, vx / wx);
}

typedef struct {
    int32_t n;             /* tasks */
    int32_t num_devices;
    int32_t n_keys;        /* distinct in-flight keys */
    int32_t n_zero;        /* zero-dep tasks */
    int32_t n_disp;        /* dispatched (device) tasks == len(ev_order) */
    const int32_t *device;     /* -1 for control tasks */
    const int64_t *order_key;  /* packed (priority, tid-rank), unique */
    const int32_t *ndeps;
    const int64_t *dep_off;    /* n+1 CSR offsets */
    const int32_t *dep_lst;
    const int32_t *ikey;       /* in-flight admission key id, -1 none */
    const int32_t *ilim;
    const int32_t *rkey;       /* released key id, -1 none */
    const int32_t *zero_dep;
    const int64_t *occ_off;    /* num_devices+1: occupying tasks CSR */
    const int32_t *occ_lst;
    const double *density;     /* COLOR_DENSITY per task */
} Graph;

typedef struct {
    int32_t num_devices;
    int32_t n_items;           /* total K-FAC items across devices */
    const int32_t *q_off;      /* num_devices+1: item offsets (global ids) */
    const int32_t *codes;      /* per global item: qdur code */
    const int32_t *trig;       /* per global item: pf trigger task, -1 deps */
    const int32_t *ndep_init;  /* per global item: len(dep_positions) */
    const int64_t *dep_out_off;/* n_items+1: dependents CSR (local pos) */
    const int32_t *dep_out;
    const double *qdensity;    /* COLOR_DENSITY per item kind */
} QDesc;

/* -- simulation ---------------------------------------------------------------- */

typedef struct {
    const Graph *g;
    const double *tdur;
    double *start, *end, *evend;
    int32_t *evorder;
    int n_ev;
    int32_t *missing;
    double *device_free;
    int64_t *rk;           /* ready heaps, device-major [D][n] */
    int32_t *rv;
    int32_t *rsz;
    int64_t *pk;           /* parked lists, key-major [K][n] */
    int32_t *pv;
    int32_t *psz;
    int32_t *inflight;
    double *et;            /* event heap */
    int32_t *es, *ei;
    int esz, seq;
    int32_t *stack;
    uint8_t *dirty;
    int remaining;
    /* fault replay (NULL f_times == no-fault path) */
    const int64_t *f_off;  /* this row's per-device CSR base, D+1 entries */
    const double *f_times; /* global failure-time pool */
    double f_delay, f_ckpt;
    int32_t *f_cur;        /* per-device failure cursor */
    int32_t *r_dev, *r_task;           /* restart rows, append order */
    double *r_fail, *r_resume, *r_lost;
    int r_cnt, r_cap, r_overflow;
} Sim;

static void rest_append(Sim *s, int dev, int idx, double f, double resume,
                        double lost) {
    if (s->r_cnt >= s->r_cap) { s->r_overflow = 1; return; }
    int k = s->r_cnt++;
    s->r_dev[k] = dev; s->r_task[k] = idx;
    s->r_fail[k] = f; s->r_resume[k] = resume; s->r_lost[k] = lost;
}

/* Transliteration of run_with_faults in retime.py: fold device `dev`'s
 * pending failures into one execution window.  Returns the start via
 * *st_out and the end as the return value. */
static double run_with_faults(Sim *s, int dev, double now, double dur,
                              int idx, double *st_out) {
    const double *times = s->f_times + s->f_off[dev];
    const int64_t n_times = s->f_off[dev + 1] - s->f_off[dev];
    int64_t cur = s->f_cur[dev];
    double st = now;
    while (cur < n_times && times[cur] <= st) {
        double f = times[cur];
        cur++;
        double resume = f + s->f_delay;
        if (resume > st) {
            rest_append(s, dev, idx, f, resume, 0.0);
            st = resume;
        }
    }
    double attempt = st;
    double left = dur;
    while (cur < n_times && times[cur] < attempt + left) {
        double f = times[cur];
        cur++;
        if (f <= attempt) {
            /* failure during restart downtime: outage extends, no new
             * work is lost */
            double resume = f + s->f_delay;
            if (resume > attempt) {
                rest_append(s, dev, idx, f, resume, 0.0);
                attempt = resume;
            }
            continue;
        }
        double done = f - attempt;
        double preserved = 0.0;
        if (s->f_ckpt > 0.0) {
            double last_ckpt = py_floordiv(f, s->f_ckpt) * s->f_ckpt;
            if (last_ckpt > attempt) {
                double cap = last_ckpt - attempt;
                preserved = done < cap ? done : cap;  /* min(done, cap) */
            }
        }
        left -= preserved;
        double resume = f + s->f_delay;
        rest_append(s, dev, idx, f, resume, done - preserved);
        attempt = resume;
    }
    s->f_cur[dev] = (int32_t)cur;
    *st_out = st;
    return attempt + left;
}

static void ready_push(Sim *s, int dev, int64_t key, int32_t val) {
    const int n = s->g->n;
    int64_t *K = s->rk + (size_t)dev * n;
    int32_t *V = s->rv + (size_t)dev * n;
    int i = s->rsz[dev]++;
    while (i > 0) {
        int p = (i - 1) >> 1;
        if (K[p] <= key) break;
        K[i] = K[p]; V[i] = V[p];
        i = p;
    }
    K[i] = key; V[i] = val;
}

static void ready_pop(Sim *s, int dev) {
    const int n = s->g->n;
    int64_t *K = s->rk + (size_t)dev * n;
    int32_t *V = s->rv + (size_t)dev * n;
    int m = --s->rsz[dev];
    int64_t key = K[m]; int32_t val = V[m];
    int i = 0;
    for (;;) {
        int c = 2 * i + 1;
        if (c >= m) break;
        if (c + 1 < m && K[c + 1] < K[c]) c++;
        if (K[c] >= key) break;
        K[i] = K[c]; V[i] = V[c];
        i = c;
    }
    if (m > 0) { K[i] = key; V[i] = val; }
}

static inline int evless(double t1, int32_t s1, double t2, int32_t s2) {
    return t1 < t2 || (t1 == t2 && s1 < s2);
}

static void ev_push(Sim *s, double t, int32_t sq, int32_t idx) {
    int i = s->esz++;
    while (i > 0) {
        int p = (i - 1) >> 1;
        if (!evless(t, sq, s->et[p], s->es[p])) break;
        s->et[i] = s->et[p]; s->es[i] = s->es[p]; s->ei[i] = s->ei[p];
        i = p;
    }
    s->et[i] = t; s->es[i] = sq; s->ei[i] = idx;
}

static int ev_pop(Sim *s) {
    int idx = s->ei[0];
    int m = --s->esz;
    double t = s->et[m]; int32_t sq = s->es[m], v = s->ei[m];
    int i = 0;
    for (;;) {
        int c = 2 * i + 1;
        if (c >= m) break;
        if (c + 1 < m && evless(s->et[c + 1], s->es[c + 1], s->et[c], s->es[c]))
            c++;
        if (!evless(s->et[c], s->es[c], t, sq)) break;
        s->et[i] = s->et[c]; s->es[i] = s->es[c]; s->ei[i] = s->ei[c];
        i = c;
    }
    if (m > 0) { s->et[i] = t; s->es[i] = sq; s->ei[i] = v; }
    return idx;
}

static void promote(Sim *s, int32_t idx, double now) {
    const Graph *g = s->g;
    int sp = 0;
    s->stack[sp++] = idx;
    while (sp) {
        int cur = s->stack[--sp];
        int dev = g->device[cur];
        if (dev < 0) {
            s->start[cur] = now;
            s->end[cur] = now;
            s->evend[cur] = now;
            s->remaining--;
            for (int64_t j = g->dep_off[cur]; j < g->dep_off[cur + 1]; j++) {
                int dep = g->dep_lst[j];
                if (--s->missing[dep] == 0) s->stack[sp++] = dep;
            }
        } else {
            ready_push(s, dev, g->order_key[cur], cur);
            s->dirty[dev] = 1;
        }
    }
}

static void finish(Sim *s, int idx, double t_end) {
    const Graph *g = s->g;
    s->end[idx] = t_end;
    s->remaining--;
    s->dirty[g->device[idx]] = 1;
    int rel = g->rkey[idx];
    if (rel >= 0) {
        s->inflight[rel]--;
        int m = s->psz[rel];
        if (m) {
            const int n = g->n;
            int64_t *K = s->pk + (size_t)rel * n;
            int32_t *V = s->pv + (size_t)rel * n;
            for (int j = 0; j < m; j++) {
                int dev = g->device[V[j]];
                ready_push(s, dev, K[j], V[j]);
                s->dirty[dev] = 1;
            }
            s->psz[rel] = 0;
        }
    }
    for (int64_t j = g->dep_off[idx]; j < g->dep_off[idx + 1]; j++) {
        int dep = g->dep_lst[j];
        if (--s->missing[dep] == 0) promote(s, dep, t_end);
    }
}

static void dispatch(Sim *s, int dev, double now) {
    const Graph *g = s->g;
    if (s->device_free[dev] > now + TIME_EPS) return;
    const int n = g->n;
    int64_t *K = s->rk + (size_t)dev * n;
    int32_t *V = s->rv + (size_t)dev * n;
    while (s->rsz[dev]) {
        int64_t key0 = K[0];
        int idx = V[0];
        int key = g->ikey[idx];
        if (key >= 0 && s->inflight[key] >= g->ilim[idx]) {
            ready_pop(s, dev);
            int m = s->psz[key]++;
            s->pk[(size_t)key * n + m] = key0;
            s->pv[(size_t)key * n + m] = idx;
            continue;
        }
        ready_pop(s, dev);
        if (key >= 0) s->inflight[key]++;
        double st, t_end;
        if (s->f_times == NULL) {
            st = now;
            t_end = now + s->tdur[idx];
        } else {
            t_end = run_with_faults(s, dev, now, s->tdur[idx], idx, &st);
        }
        s->device_free[dev] = t_end;
        s->start[idx] = st;
        s->evend[idx] = t_end;
        s->evorder[s->n_ev++] = idx;
        ev_push(s, t_end, s->seq++, idx);
        return;
    }
}

static int sim_one(const Graph *g, const double *tdur,
                   double *start, double *end, double *evend,
                   int32_t *evorder, double *mk_out, Sim *s) {
    const int n = g->n, D = g->num_devices, K = g->n_keys;
    memcpy(s->missing, g->ndeps, n * sizeof(int32_t));
    for (int i = 0; i < n; i++) { start[i] = 0.0; end[i] = 0.0; evend[i] = 0.0; }
    for (int d = 0; d < D; d++) s->device_free[d] = 0.0;
    memset(s->rsz, 0, D * sizeof(int32_t));
    if (K) {
        memset(s->psz, 0, K * sizeof(int32_t));
        memset(s->inflight, 0, K * sizeof(int32_t));
    }
    memset(s->dirty, 0, D);
    s->g = g; s->tdur = tdur;
    s->start = start; s->end = end; s->evend = evend;
    s->evorder = evorder; s->n_ev = 0;
    s->esz = 0; s->seq = 0;
    s->remaining = n;
    if (s->f_times) {
        memset(s->f_cur, 0, D * sizeof(int32_t));
        s->r_cnt = 0;
        s->r_overflow = 0;
    }

    for (int z = 0; z < g->n_zero; z++) promote(s, g->zero_dep[z], 0.0);
    for (int d = 0; d < D; d++)
        if (s->dirty[d]) { s->dirty[d] = 0; dispatch(s, d, 0.0); }

    while (s->esz) {
        double now = s->et[0];
        double thr = now + TIME_EPS;
        while (s->esz && s->et[0] <= thr)
            finish(s, ev_pop(s), now);
        for (int d = 0; d < D; d++)
            if (s->dirty[d]) { s->dirty[d] = 0; dispatch(s, d, now); }
    }
    if (s->remaining > 0) return ST_DEADLOCK;
    if (s->f_times && s->r_overflow) return ST_REST_OVERFLOW;
    double mk = end[0];
    for (int i = 1; i < n; i++)
        if (end[i] > mk) mk = end[i];
    *mk_out = mk;
    return ST_OK;
}

/* -- bubbles ------------------------------------------------------------------- */

typedef struct { double s, e; } Iv;

static int cmp_iv(const void *a, const void *b) {
    const Iv *x = (const Iv *)a, *y = (const Iv *)b;
    if (x->s < y->s) return -1;
    if (x->s > y->s) return 1;
    if (x->e < y->e) return -1;
    if (x->e > y->e) return 1;
    return 0;
}

/* device_bubbles: sort occupying (start, ev_end) pairs, merge with the
 * 1e-12 touch tolerance, complement within (0, span), drop <= min_bubble.
 * Returns the bubble count written into `idle`. */
static int bubbles_one(const Graph *g, const double *start,
                       const double *evend, int dev, double span,
                       double min_bubble, Iv *work, Iv *idle) {
    int m = 0;
    for (int64_t j = g->occ_off[dev]; j < g->occ_off[dev + 1]; j++) {
        int t = g->occ_lst[j];
        work[m].s = start[t];
        work[m].e = evend[t];
        m++;
    }
    qsort(work, m, sizeof(Iv), cmp_iv);
    int nm = 0;  /* merge in place into work[0..nm) */
    for (int k = 0; k < m; k++) {
        if (nm && work[k].s <= work[nm - 1].e + 1e-12) {
            if (work[k].e > work[nm - 1].e) work[nm - 1].e = work[k].e;
        } else {
            work[nm++] = work[k];
        }
    }
    int ni = 0;
    double cursor = 0.0;
    for (int k = 0; k < nm; k++) {
        double b0 = work[k].s, b1 = work[k].e;
        if (b0 >= span) break;
        double b0c = b0 > 0.0 ? b0 : 0.0;   /* max(b0, 0.0) */
        double b1c = b1 < span ? b1 : span; /* min(b1, span) */
        if (b0c > cursor) { idle[ni].s = cursor; idle[ni].e = b0c; ni++; }
        if (b1c > cursor) cursor = b1c;     /* cursor = max(cursor, b1c) */
    }
    if (cursor < span) { idle[ni].s = cursor; idle[ni].e = span; ni++; }
    int out = 0;
    for (int k = 0; k < ni; k++)
        if (idle[k].e - idle[k].s > min_bubble) idle[out++] = idle[k];
    return out;
}

/* -- bubble filler ------------------------------------------------------------- */

static inline int feasible(double remaining, double room, double min_chunk) {
    if (room < remaining - EPS)
        return !(room < min_chunk - EPS || remaining - room < min_chunk);
    return room > EPS;
}

typedef struct { double r; int32_t p; } Cand;

/* insert (r, p) keeping the array sorted ascending by (r, p) */
static void cand_insort(Cand *a, int *n, double r, int32_t p) {
    int lo = 0, hi = *n;
    while (lo < hi) {
        int mid = (lo + hi) >> 1;
        if (a[mid].r < r || (a[mid].r == r && a[mid].p < p)) lo = mid + 1;
        else hi = mid;
    }
    memmove(a + lo + 1, a + lo, (*n - lo) * sizeof(Cand));
    a[lo].r = r; a[lo].p = p;
    (*n)++;
}

static int cmp_cand(const void *x, const void *y) {
    const Cand *a = (const Cand *)x, *b = (const Cand *)y;
    if (a->r < b->r) return -1;
    if (a->r > b->r) return 1;
    if (a->p < b->p) return -1;
    if (a->p > b->p) return 1;
    return 0;
}

typedef struct {
    double *dur, *placed, *dep_max_end;
    int32_t *dep_count;
    Cand *future, *now;
    Iv *work, *idle;
    int32_t *seg_head, *seg_tail;  /* per global item chain */
    int32_t *seg_next;             /* per segment */
} FillWs;

/* Fill one point's queues.  Segments stream into (seg_item, seg_s, seg_e)
 * in placement order with per-item chains for the c_kfac fold. */
static int fill_one(const Graph *pf, const QDesc *q,
                    const double *start, const double *evend, double span,
                    const double *qd, int max_steps, double min_bubble,
                    double min_chunk, int seg_cap,
                    int32_t *dev_steps, int32_t *seg_item,
                    double *seg_s, double *seg_e, int32_t *seg_count,
                    double *c_kfac_out, FillWs *w) {
    const int D = q->num_devices;
    int nseg = 0;
    for (int i = 0; i < q->n_items; i++) w->seg_head[i] = -1;

    for (int dev = 0; dev < D; dev++) {
        int base = q->q_off[dev];
        int n = q->q_off[dev + 1] - base;
        if (n == 0) { dev_steps[dev] = 0; continue; }
        int nb = bubbles_one(pf, start, evend, dev, span, min_bubble,
                             w->work, w->idle);
        if (nb == 0) return ST_NO_BUBBLES;
        const Iv *bubbles0 = w->idle;
        double *dur = w->dur, *placed = w->placed;
        double *dep_max_end = w->dep_max_end;
        int32_t *dep_count = w->dep_count;
        for (int pos = 0; pos < n; pos++) {
            dur[pos] = qd[q->codes[base + pos]];
            placed[pos] = 0.0;
            dep_count[pos] = 0;
            dep_max_end[pos] = 0.0;
        }
        Cand *future = w->future, *now = w->now;
        int nf = 0, nn = 0;
        for (int pos = 0; pos < n; pos++) {
            int ti = q->trig[base + pos];
            if (ti >= 0) {
                future[nf].r = evend[ti] - span;
                future[nf].p = pos;
                nf++;
            } else {
                dep_count[pos] = q->ndep_init[base + pos];
            }
        }
        qsort(future, nf, sizeof(Cand), cmp_cand);

        int remaining = n;
        double last_placed_duration = -1.0;
        int steps_used = 0;
        int step;
        for (step = 0; step < max_steps; step++) {
            double offset = (double)step * span;
            for (int bi = 0; bi < nb; bi++) {
                double b1 = bubbles0[bi].e + offset;
                double t = bubbles0[bi].s + offset;
                for (;;) {
                    if (b1 - t <= EPS) break;
                    if (nf && future[0].r <= t) {
                        int k = 1;
                        while (k < nf && future[k].r <= t) k++;
                        for (int j = 0; j < k; j++)
                            cand_insort(now, &nn, -future[j].r, future[j].p);
                        memmove(future, future + k, (nf - k) * sizeof(Cand));
                        nf -= k;
                    }
                    int win_at = -1, win_pos = -1;
                    double win_ready = 0.0;
                    int from_future = 0;
                    double st = t;
                    double room_now = b1 - t;
                    for (int j = 0; j < nn; j++) {
                        int pos = now[j].p;
                        if (feasible(dur[pos] - placed[pos], room_now,
                                     min_chunk)) {
                            win_at = j; win_pos = pos;
                            win_ready = -now[j].r;
                            break;
                        }
                    }
                    if (win_pos < 0) {
                        for (int j = 0; j < nf; j++) {
                            double r = future[j].r;
                            if (r >= b1) break;
                            int pos = future[j].p;
                            if (feasible(dur[pos] - placed[pos], b1 - r,
                                         min_chunk)) {
                                win_at = j; win_pos = pos; win_ready = r;
                                st = r;
                                from_future = 1;
                                break;
                            }
                        }
                    }
                    if (win_pos < 0) break;
                    double rem = dur[win_pos] - placed[win_pos];
                    double room = b1 - st;
                    double piece = rem < room ? rem : room;
                    double e = st + piece;
                    if (nseg >= seg_cap) return ST_SEG_OVERFLOW;
                    int gi = base + win_pos;
                    seg_item[nseg] = gi;
                    seg_s[nseg] = st;
                    seg_e[nseg] = e;
                    w->seg_next[nseg] = -1;
                    if (w->seg_head[gi] < 0) w->seg_head[gi] = nseg;
                    else w->seg_next[w->seg_tail[gi]] = nseg;
                    w->seg_tail[gi] = nseg;
                    nseg++;
                    placed[win_pos] = placed[win_pos] + (e - st);
                    t = e;
                    if (dur[win_pos] - placed[win_pos] <= 1e-12) {
                        remaining--;
                        if (from_future) {
                            memmove(future + win_at, future + win_at + 1,
                                    (nf - win_at - 1) * sizeof(Cand));
                            nf--;
                        } else {
                            memmove(now + win_at, now + win_at + 1,
                                    (nn - win_at - 1) * sizeof(Cand));
                            nn--;
                        }
                        double item_end = e;
                        for (int64_t dj = q->dep_out_off[gi];
                             dj < q->dep_out_off[gi + 1]; dj++) {
                            int dpos = q->dep_out[dj];
                            dep_count[dpos]--;
                            if (item_end > dep_max_end[dpos])
                                dep_max_end[dpos] = item_end;
                            if (dep_count[dpos] == 0)
                                cand_insort(future, &nf, dep_max_end[dpos],
                                            dpos);
                        }
                    } else if (from_future) {
                        memmove(future + win_at, future + win_at + 1,
                                (nf - win_at - 1) * sizeof(Cand));
                        nf--;
                        cand_insort(now, &nn, -win_ready, win_pos);
                    }
                }
                if (remaining == 0) { steps_used = step + 1; break; }
            }
            if (remaining == 0) { steps_used = step + 1; break; }
            double total = 0.0;
            for (int pos = 0; pos < n; pos++) total += placed[pos];
            if (total <= last_placed_duration + EPS) return ST_NO_PROGRESS;
            last_placed_duration = total;
        }
        if (remaining != 0) return ST_MAX_STEPS;
        dev_steps[dev] = steps_used;
    }
    *seg_count = nseg;

    /* c_kfac: devices ascending, items in inventory order, segments in
     * placement order — the reference _pf_utilization fold order. */
    double c_kfac = 0.0;
    for (int gi = 0; gi < q->n_items; gi++) {
        double rho = q->qdensity[gi];
        for (int si = w->seg_head[gi]; si >= 0; si = w->seg_next[si])
            c_kfac += (seg_e[si] - seg_s[si]) * rho;
    }
    *c_kfac_out = c_kfac;
    return ST_OK;
}

/* -- utilization folds --------------------------------------------------------- */

static double windowed_util(const Graph *g, const double *start,
                            const double *evend, const int32_t *evorder,
                            double t1) {
    double total = 0.0;
    for (int k = 0; k < g->n_disp; k++) {
        int i = evorder[k];
        double e = evend[i], s = start[i];
        if (e <= 0.0 || s >= t1) continue;
        double ee = e < t1 ? e : t1;   /* min(e, t1) */
        double ss = s > 0.0 ? s : 0.0; /* max(s, 0.0) */
        total += (ee - ss) * g->density[i];
    }
    return total / ((double)g->num_devices * (t1 - 0.0));
}

/* -- exported batch entry points ------------------------------------------------ */

int repro_sim_batch(const Graph *g, int32_t P, const double *td,
                    double *start, double *end, double *evend,
                    int32_t *evorder, double *mk, int32_t *status) {
    const int n = g->n, D = g->num_devices, K = g->n_keys > 0 ? g->n_keys : 1;
    Sim s;
    s.f_times = NULL;
    s.f_cur = NULL;
    s.missing = malloc((size_t)n * sizeof(int32_t));
    s.device_free = malloc((size_t)D * sizeof(double));
    s.rk = malloc((size_t)D * n * sizeof(int64_t));
    s.rv = malloc((size_t)D * n * sizeof(int32_t));
    s.rsz = malloc((size_t)D * sizeof(int32_t));
    s.pk = malloc((size_t)K * n * sizeof(int64_t));
    s.pv = malloc((size_t)K * n * sizeof(int32_t));
    s.psz = malloc((size_t)K * sizeof(int32_t));
    s.inflight = malloc((size_t)K * sizeof(int32_t));
    s.et = malloc((size_t)n * sizeof(double));
    s.es = malloc((size_t)n * sizeof(int32_t));
    s.ei = malloc((size_t)n * sizeof(int32_t));
    s.stack = malloc((size_t)n * sizeof(int32_t));
    s.dirty = malloc((size_t)D);
    if (!s.missing || !s.device_free || !s.rk || !s.rv || !s.rsz || !s.pk
        || !s.pv || !s.psz || !s.inflight || !s.et || !s.es || !s.ei
        || !s.stack || !s.dirty) {
        status[0] = -1;
        goto done;
    }
    for (int p = 0; p < P; p++) {
        status[p] = sim_one(g, td + (size_t)p * n,
                            start + (size_t)p * n, end + (size_t)p * n,
                            evend + (size_t)p * n,
                            evorder + (size_t)p * g->n_disp, mk + p, &s);
    }
done:
    free(s.missing); free(s.device_free); free(s.rk); free(s.rv);
    free(s.rsz); free(s.pk); free(s.pv); free(s.psz); free(s.inflight);
    free(s.et); free(s.es); free(s.ei); free(s.stack); free(s.dirty);
    return 0;
}

/* Fault-aware batch: one row per point, each with its own per-device
 * failure-time table (global CSR: ft_off[p*D+d] .. ft_off[p*D+d+1] slice
 * ft_times), restart delay, and checkpoint interval.  Rows with empty
 * tables run the exact same arithmetic as the no-fault path (st = now,
 * end = now + dur), so mixed batches need no splitting.  Restart rows
 * stream into (rest_dev, rest_task, rest_fail, rest_resume, rest_lost)
 * at row stride rest_cap in append order; rest_count[p] rows are valid.
 * Each failure time is consumed at most once per row (the cursor is
 * monotone), so rest_cap = max per-row failure total is an exact bound;
 * ST_REST_OVERFLOW is a defensive per-row status all the same. */
int repro_sim_fault_batch(const Graph *g, int32_t P, const double *td,
                          const int64_t *ft_off, const double *ft_times,
                          const double *delay, const double *ckpt,
                          int32_t rest_cap,
                          double *start, double *end, double *evend,
                          int32_t *evorder, double *mk,
                          int32_t *rest_dev, int32_t *rest_task,
                          double *rest_fail, double *rest_resume,
                          double *rest_lost, int32_t *rest_count,
                          int32_t *status) {
    const int n = g->n, D = g->num_devices, K = g->n_keys > 0 ? g->n_keys : 1;
    Sim s;
    s.f_times = ft_times;
    s.r_cap = rest_cap;
    s.missing = malloc((size_t)n * sizeof(int32_t));
    s.device_free = malloc((size_t)D * sizeof(double));
    s.rk = malloc((size_t)D * n * sizeof(int64_t));
    s.rv = malloc((size_t)D * n * sizeof(int32_t));
    s.rsz = malloc((size_t)D * sizeof(int32_t));
    s.pk = malloc((size_t)K * n * sizeof(int64_t));
    s.pv = malloc((size_t)K * n * sizeof(int32_t));
    s.psz = malloc((size_t)K * sizeof(int32_t));
    s.inflight = malloc((size_t)K * sizeof(int32_t));
    s.et = malloc((size_t)n * sizeof(double));
    s.es = malloc((size_t)n * sizeof(int32_t));
    s.ei = malloc((size_t)n * sizeof(int32_t));
    s.stack = malloc((size_t)n * sizeof(int32_t));
    s.dirty = malloc((size_t)D);
    s.f_cur = malloc((size_t)D * sizeof(int32_t));
    if (!s.missing || !s.device_free || !s.rk || !s.rv || !s.rsz || !s.pk
        || !s.pv || !s.psz || !s.inflight || !s.et || !s.es || !s.ei
        || !s.stack || !s.dirty || !s.f_cur) {
        status[0] = -1;
        goto done;
    }
    for (int p = 0; p < P; p++) {
        s.f_off = ft_off + (size_t)p * D;
        s.f_delay = delay[p];
        s.f_ckpt = ckpt[p];
        s.r_dev = rest_dev + (size_t)p * rest_cap;
        s.r_task = rest_task + (size_t)p * rest_cap;
        s.r_fail = rest_fail + (size_t)p * rest_cap;
        s.r_resume = rest_resume + (size_t)p * rest_cap;
        s.r_lost = rest_lost + (size_t)p * rest_cap;
        status[p] = sim_one(g, td + (size_t)p * n,
                            start + (size_t)p * n, end + (size_t)p * n,
                            evend + (size_t)p * n,
                            evorder + (size_t)p * g->n_disp, mk + p, &s);
        rest_count[p] = s.r_cnt;
    }
done:
    free(s.missing); free(s.device_free); free(s.rk); free(s.rv);
    free(s.rsz); free(s.pk); free(s.pv); free(s.psz); free(s.inflight);
    free(s.et); free(s.es); free(s.ei); free(s.stack); free(s.dirty);
    free(s.f_cur);
    return 0;
}

int repro_fill_batch(const Graph *pf, const QDesc *q, int32_t P,
                     const double *start, const double *evend,
                     const double *mk, const double *qd,
                     const int32_t *evorder, int32_t max_steps,
                     double min_bubble, double min_chunk, int32_t seg_cap,
                     int32_t *dev_steps, int32_t *refresh,
                     int32_t *seg_item, double *seg_s, double *seg_e,
                     int32_t *seg_count, double *pf_util, int32_t *status) {
    const int n = pf->n, D = pf->num_devices;
    int n_items_max = 0, occ_max = 0;
    for (int d = 0; d < D; d++) {
        int m = q->q_off[d + 1] - q->q_off[d];
        if (m > n_items_max) n_items_max = m;
        int o = (int)(pf->occ_off[d + 1] - pf->occ_off[d]);
        if (o > occ_max) occ_max = o;
    }
    if (n_items_max < 1) n_items_max = 1;
    FillWs w;
    w.dur = malloc((size_t)n_items_max * sizeof(double));
    w.placed = malloc((size_t)n_items_max * sizeof(double));
    w.dep_max_end = malloc((size_t)n_items_max * sizeof(double));
    w.dep_count = malloc((size_t)n_items_max * sizeof(int32_t));
    w.future = malloc((size_t)(n_items_max + 1) * sizeof(Cand));
    w.now = malloc((size_t)(n_items_max + 1) * sizeof(Cand));
    w.work = malloc((size_t)(occ_max + 2) * sizeof(Iv));
    w.idle = malloc((size_t)(occ_max + 2) * sizeof(Iv));
    w.seg_head = malloc((size_t)(q->n_items > 0 ? q->n_items : 1)
                        * sizeof(int32_t));
    w.seg_tail = malloc((size_t)(q->n_items > 0 ? q->n_items : 1)
                        * sizeof(int32_t));
    w.seg_next = malloc((size_t)(seg_cap > 0 ? seg_cap : 1)
                        * sizeof(int32_t));
    if (!w.dur || !w.placed || !w.dep_max_end || !w.dep_count || !w.future
        || !w.now || !w.work || !w.idle || !w.seg_head || !w.seg_tail
        || !w.seg_next) {
        status[0] = -1;
        goto done;
    }
    for (int p = 0; p < P; p++) {
        double c_kfac = 0.0;
        int st = fill_one(pf, q, start + (size_t)p * n,
                          evend + (size_t)p * n, mk[p], qd + (size_t)p * 4,
                          max_steps, min_bubble, min_chunk, seg_cap,
                          dev_steps + (size_t)p * D,
                          seg_item + (size_t)p * seg_cap,
                          seg_s + (size_t)p * seg_cap,
                          seg_e + (size_t)p * seg_cap,
                          seg_count + p, &c_kfac, &w);
        status[p] = st;
        if (st != ST_OK) continue;
        int32_t *steps = dev_steps + (size_t)p * D;
        int r = 1;
        for (int d = 0; d < D; d++)
            if (steps[d] > r) r = steps[d];
        refresh[p] = r;
        const double *pstart = start + (size_t)p * n;
        const double *pevend = evend + (size_t)p * n;
        const int32_t *pev = evorder + (size_t)p * pf->n_disp;
        double c_template = 0.0;
        for (int k = 0; k < pf->n_disp; k++) {
            int i = pev[k];
            c_template += (pevend[i] - pstart[i]) * pf->density[i];
        }
        double pf_colored = (double)r * c_template + c_kfac;
        pf_util[p] = pf_colored / ((double)(pf->num_devices * r) * mk[p]);
    }
done:
    free(w.dur); free(w.placed); free(w.dep_max_end); free(w.dep_count);
    free(w.future); free(w.now); free(w.work); free(w.idle);
    free(w.seg_head); free(w.seg_tail); free(w.seg_next);
    return 0;
}

int repro_windowed_util_batch(const Graph *g, int32_t P, const double *start,
                              const double *evend, const int32_t *evorder,
                              const double *mk, double *util) {
    const int n = g->n;
    for (int p = 0; p < P; p++)
        util[p] = windowed_util(g, start + (size_t)p * n,
                                evend + (size_t)p * n,
                                evorder + (size_t)p * g->n_disp, mk[p]);
    return 0;
}

int repro_mc_metrics_batch(const Graph *g, int32_t P, const double *start,
                           const double *evend, const int32_t *evorder,
                           const double *mk, double *bubble_frac,
                           double *util) {
    const int n = g->n, D = g->num_devices;
    int occ_max = 0;
    for (int d = 0; d < D; d++) {
        int o = (int)(g->occ_off[d + 1] - g->occ_off[d]);
        if (o > occ_max) occ_max = o;
    }
    Iv *work = malloc((size_t)(occ_max + 2) * sizeof(Iv));
    Iv *idle = malloc((size_t)(occ_max + 2) * sizeof(Iv));
    if (!work || !idle) {
        free(work); free(idle);
        return -1;
    }
    for (int p = 0; p < P; p++) {
        const double *ps = start + (size_t)p * n;
        const double *pe = evend + (size_t)p * n;
        double span = mk[p];
        double idle_total = 0.0;
        for (int dev = 0; dev < D; dev++) {
            int ni = bubbles_one(g, ps, pe, dev, span, 0.0, work, idle);
            for (int k = 0; k < ni; k++)
                idle_total += idle[k].e - idle[k].s;
        }
        bubble_frac[p] = idle_total / ((double)D * span);
        util[p] = windowed_util(g, ps, pe,
                                evorder + (size_t)p * g->n_disp, span);
    }
    free(work); free(idle);
    return 0;
}
